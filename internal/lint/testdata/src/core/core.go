// Fixture for the determinism analyzer. The directory is named "core" so
// the package classifies as simulator-core, where the rules apply.
package core

import (
	"fmt"
	"math/rand" // want "simulator-core package imports math/rand"
	"sort"
	"time"
)

func clocks() {
	_ = time.Now()              // want "time.Now reads the wall clock"
	_ = time.Since(time.Time{}) // want "time.Since reads the wall clock"
	_ = rand.Int()
	// Duration arithmetic on simulated quantities is fine.
	_ = time.Duration(5) * time.Second
}

func mapOrderLeaks(m map[string]float64) ([]string, float64) {
	var names []string
	total := 0.0
	for k, v := range m {
		names = append(names, k) // want "append to \"names\" inside map iteration"
		total += v               // want "floating-point accumulation in map-iteration order"
		fmt.Println(k)           // want "fmt.Println inside map iteration"
	}
	return names, total
}

type holder struct{ out []int }

func fieldAppend(m map[int]int, h *holder) {
	for k := range m {
		h.out = append(h.out, k) // want "append inside map iteration bakes randomized map order"
	}
}

// collectThenSort is the blessed idiom: append inside the loop is fine
// because the slice is deterministically sorted before anyone reads it.
func collectThenSort(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortsTheWrongSlice collects into one slice but sorts another: the
// post-loop sort must name the append target to count.
func sortsTheWrongSlice(m map[string]int) []string {
	var keys []string
	other := []string{"b", "a"}
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
	}
	sort.Strings(other)
	_ = len(keys)
	return keys
}

// sliceRange ranges over a slice, which iterates in index order: none of
// the map rules apply.
func sliceRange(xs []float64) float64 {
	total := 0.0
	var out []float64
	for _, v := range xs {
		total += v
		out = append(out, v)
	}
	_ = out
	return total
}

// intAccumulation in map order is exact (integer addition commutes), so
// only float accumulation is flagged.
func intAccumulation(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
