// Package audit is the fixture stand-in for repro/internal/audit: the
// observerhot analyzer recognizes observer/trace types by their defining
// package's base name.
package audit

// SlotTrace is one slot's observation record.
type SlotTrace struct {
	Slot    int
	BrownWh float64
}

// Observer consumes per-slot traces.
type Observer interface {
	ObserveSlot(SlotTrace)
}
