// Fixture exercised directly (not via want comments): a bare ephemeral
// mark's diagnostic lands on the mark's own line, where a want comment
// would become part of the reason text.
package snapstatebad

// T carries a reasonless ephemeral mark on b.
//
//gm:statemirror Snap Restore
type T struct {
	a int
	//gm:ephemeral
	b int
}

// Snap reads a.
func (t *T) Snap() int { return t.a }

// Restore writes a.
func (t *T) Restore(v int) { t.a = v }
