// Fixture for //lint:allow suppression: trailing, standalone, and
// wildcard forms, plus proof that unsuppressed findings survive.
package suppress

func compares(a, b float64) {
	_ = a == b //lint:allow floateq fixture exercises the trailing-comment form
	_ = a != b // want "floating-point != comparison"
	//lint:allow floateq fixture exercises the standalone-comment form
	_ = a == b
	//lint:allow * fixture exercises the wildcard analyzer form
	_ = a == b
	//lint:allow determinism a directive for a different analyzer does not suppress
	_ = a == b // want "floating-point == comparison"
}
