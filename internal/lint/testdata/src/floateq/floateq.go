// Fixture for the floateq analyzer: raw float equality, the zero-sentinel
// escape, and the approved-helper escape.
package floateq

import "units"

func compares(a, b float64, p, q units.Power) {
	_ = a == b // want "floating-point == comparison"
	_ = a != b // want "floating-point != comparison"
	_ = p == q // want "floating-point == comparison"
	_ = p != q // want "floating-point != comparison"
}

func sentinels(a float64, p units.Power) {
	_ = a == 0   // comparing against the exact constant 0 is a sentinel check
	_ = 0 == a   //
	_ = a != 0   //
	_ = a-1 == 0 // the blessed identity-check spelling
	_ = p == 0   //
}

func ordered(a, b float64) bool {
	// Ordered comparisons are the recommended restructuring and are free.
	if a < b {
		return true
	}
	return a >= b
}

func ints(i, j int) bool { return i == j }

// ApproxEqual is an approved helper name: the raw comparison inside it is
// the single place the discipline is allowed to live.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// feq is the approved short-form helper name.
func feq(a, b float64) bool { return a == b }
