// Fixture for malformed //lint:allow directives, checked directly by
// TestMalformedDirective (the malformed diagnostic lands on the comment's
// own line, where a want comment cannot sit without changing the parse).
package malformed

func compares(a, b float64) bool {
	//lint:allow floateq
	return a == b
}
