// Fixture for the applypath analyzer: //gm:mutator calls must sit inside
// a //gm:applypath function.
package applypath

import "mutatordep"

type runner struct {
	live *mutatordep.Live
	seq  uint64
}

// apply is the journaled apply path: mutator calls are sanctioned here.
//
//gm:applypath
func (r *runner) apply(kind string, v int) error {
	r.seq++
	switch kind {
	case "submit":
		return r.live.Submit(v)
	case "tick":
		return r.live.StepTo(v)
	}
	return nil
}

// handleDirect bypasses the journal: the mutation would be acknowledged
// but never replayed after a crash.
func (r *runner) handleDirect(v int) {
	_ = r.live.Submit(v) // want "call to //gm:mutator Live.Submit outside a //gm:applypath function"
	_ = r.live.NextSlot()
	mutatordep.Reset(r.live) // want "call to //gm:mutator Reset outside a //gm:applypath function"
}

// peek only reads; accessors are fine anywhere.
func (r *runner) peek() int { return r.live.NextSlot() }

// localMutator is declared in this package. The defining package is
// exempt: the boundary polices external callers.
//
//gm:mutator
func localMutator(r *runner) { r.seq++ }

func helper(r *runner) {
	localMutator(r)
}
