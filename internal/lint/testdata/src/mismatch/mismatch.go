// Fixture for RunFixture's own failure paths, checked by
// TestRunFixtureMismatch: one undeclared diagnostic and one want that
// nothing matches.
package mismatch

func compares(a, b float64) {
	_ = a == b
	_ = a // want "this regexp matches no diagnostic"
}
