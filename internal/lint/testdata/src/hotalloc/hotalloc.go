// Fixture for the hotalloc analyzer: allocating constructs inside
// //gm:hotpath functions.
package hotalloc

import "audit"

type kernel struct {
	buf    []float64
	obs    audit.Observer
	scale  float64
	spread []any
}

type slotFlows struct{ green, brown float64 }

// step is the per-slot kernel.
//
//gm:hotpath
func (k *kernel) step(slot int, vals []float64) slotFlows {
	if len(vals) == 0 {
		panic("empty slot " + itoa(slot)) // panic args are exempt
	}
	tmp := make([]float64, len(vals)) // want "make allocates on the hot path"
	_ = tmp
	m := map[int]float64{} // want "map literal allocates on the hot path"
	_ = m
	s := []float64{1, 2} // want "slice literal allocates on the hot path"
	_ = s
	p := &slotFlows{green: 1} // want "&composite literal escapes to the heap on the hot path"
	_ = p
	f := func() float64 { return k.scale } // want "func literal allocates its environment on the hot path"
	_ = f
	name := "slot-" + itoa(slot) + "!" // want "string concatenation allocates on the hot path"
	_ = name
	sink(slot) // want "passing int into an interface parameter allocates \(boxing\) on the hot path"
	sink(nil)      // untyped nil fills the interface word without boxing
	sink(&k.scale) // pointers fit in the interface word: no boxing
	sink(k.obs)    // already an interface: no boxing
	sinkAll(slot, k.scale) // want "passing int into an interface parameter allocates \(boxing\) on the hot path" "passing float64 into an interface parameter allocates \(boxing\) on the hot path"
	sinkAll(k.spread...) // spreading an existing \[\]any reuses its backing array
	q := new(slotFlows) // want "new allocates on the hot path"
	_ = q
	_ = any(slot) // want "conversion of int to interface type allocates \(boxing\) on the hot path"
	if k.obs != nil {
		// Observation-on is the slow path by contract: exempt.
		trace := audit.SlotTrace{Slot: slot, BrownWh: vals[0]}
		spill := make([]float64, len(vals))
		copy(spill, vals)
		k.obs.ObserveSlot(trace)
	}
	total := 0.0
	for _, v := range vals {
		total += v * k.scale
	}
	k.buf = k.buf[:0]
	return slotFlows{green: total} // value struct literal: stack-allocated
}

// cold is unmarked: hotalloc has no opinion about it.
func cold(n int) []int {
	out := make([]int, n)
	return out
}

// itoa stands in for a formatting helper.
func itoa(n int) string {
	return string(rune('0' + n%10))
}

func sink(v any) { _ = v }

func sinkAll(vs ...any) { _ = vs }
