// Fixture for the observerhot analyzer: the zero-cost-when-disabled
// observability contract on //gm:hotpath functions.
package observerhot

import (
	"audit"
	"fmt"
)

// emit assembles and delivers a trace; its contract is "caller guards".
//
//gm:observed
func emit(o audit.Observer, slot int) {
	o.ObserveSlot(audit.SlotTrace{Slot: slot})
}

// step is the per-slot hot path; everything observer-flavored below is
// unguarded and must be flagged.
//
//gm:hotpath
func step(o audit.Observer, slot int) {
	fmt.Printf("slot %d\n", slot)              // want "fmt.Printf on the hot path without a nil-observer guard"
	emit(o, slot)                              // want "call to //gm:observed function emit" "use of audit-typed value on the hot path"
	o.ObserveSlot(audit.SlotTrace{Slot: slot}) // want "use of audit-typed value on the hot path" "audit-typed literal on the hot path"
}

// stepGuarded is the same hot path done right: one nil check dominates all
// observer work, so nothing here is flagged.
//
//gm:hotpath
func stepGuarded(o audit.Observer, slot int) {
	if o != nil {
		fmt.Printf("slot %d\n", slot)
		emit(o, slot)
		o.ObserveSlot(audit.SlotTrace{Slot: slot})
	}
	if slot > 0 && o != nil {
		emit(o, slot) // &&-combined guards count
	}
	x := slot * 2 // plain arithmetic on the hot path is free
	if x < 0 {
		panic(fmt.Sprintf("bad slot %d", slot)) // fmt feeding a panic is exempt
	}
}

// elseBranch: the else of a nil check is the observer-off path, so fmt
// there is still hot-path work.
//
//gm:hotpath
func elseBranch(o audit.Observer, slot int) {
	if o != nil {
		emit(o, slot)
	} else {
		fmt.Println("no observer") // want "fmt.Println on the hot path without a nil-observer guard"
	}
}

// notHot carries no annotation: the analyzer leaves cold paths alone even
// when they do observer work unguarded.
func notHot(o audit.Observer, slot int) {
	fmt.Println("cold path", slot)
	emit(o, slot)
}
