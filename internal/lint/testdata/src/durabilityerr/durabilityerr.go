// Fixture for the durabilityerr analyzer. The package base name
// "durabilityerr" is in the analyzer's scope map alongside serve/audit/cmd.
package durabilityerr

import (
	"bufio"
	"bytes"
	"os"
	"strings"
)

// appendEntry drops every error on the way to disk.
func appendEntry(f *os.File, rec []byte) {
	f.Write(rec) // want "dropped error from \(\*os\.File\)\.Write on the durability path"
	f.Sync()     // want "dropped error from \(\*os\.File\)\.Sync on the durability path"
	go f.Sync()  // want "dropped error from \(\*os\.File\)\.Sync on the durability path"
}

// flushAll is careful: checked errors and explicit discards are fine.
func flushAll(w *bufio.Writer, f *os.File) error {
	if err := w.Flush(); err != nil {
		return err
	}
	_ = f.Sync()
	return f.Close()
}

// closeLater defers the close without looking at the error — the classic
// way a failed flush-on-close vanishes.
func closeLater(f *os.File) {
	defer f.Close() // want "deferred \(\*os\.File\)\.Close discards its error on the durability path"
}

// closeChecked is the sanctioned deferred shape.
func closeChecked(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return nil
}

// buffered writers are documented infallible: exempt.
func buffered(rec []byte) string {
	var b bytes.Buffer
	b.Write(rec)
	var sb strings.Builder
	sb.WriteString("x")
	return b.String() + sb.String()
}

// closer has an error-free Close: nothing to drop.
type closer struct{}

func (closer) Close() {}

func shutdown(c closer) {
	c.Close()
}
