// Package mirrordep supplies a mirrored component type for the snapstate
// fixture's cross-package nesting checks: the fixture's outer struct embeds
// a *Cell and restores it via Cell.Restore, which must be credited through
// the fact store rather than local analysis.
package mirrordep

// Cell is a tiny mirrored component (think battery.Battery).
//
//gm:statemirror State Restore
type Cell struct {
	Stored float64
	Count  int
}

// CellState is Cell's serializable mirror.
type CellState struct {
	Stored float64 `json:"stored"`
	Count  int     `json:"count"`
}

// State captures the cell's mutable state.
func (c *Cell) State() CellState {
	return CellState{Stored: c.Stored, Count: c.Count}
}

// Restore overwrites the cell's mutable state.
func (c *Cell) Restore(st CellState) {
	c.Stored = st.Stored
	c.Count = st.Count
}
