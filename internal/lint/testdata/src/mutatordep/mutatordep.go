// Package mutatordep supplies //gm:mutator methods for the applypath
// fixture's cross-package checks (think core.Live): the mutator facts are
// exported here and imported by the dependent fixture package.
package mutatordep

// Live is the stand-in live scheduler.
type Live struct{ slot int }

// Submit enqueues a job.
//
//gm:mutator
func (l *Live) Submit(job int) error { l.slot += job; return nil }

// StepTo advances the scheduler.
//
//gm:mutator
func (l *Live) StepTo(slot int) error { l.slot = slot; return nil }

// NextSlot is a read-only accessor; callable from anywhere.
func (l *Live) NextSlot() int { return l.slot }

// Reset is a package-level mutator (no receiver in its exported name).
//
//gm:mutator
func Reset(l *Live) { l.slot = 0 }

// Box is a generic holder whose mutator has a type-parameterized receiver.
type Box[T any] struct{ v T }

// Put replaces the held value.
//
//gm:mutator
func (b *Box[T]) Put(v T) { b.v = v }
