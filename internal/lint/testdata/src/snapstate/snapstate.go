// Fixture for the snapstate analyzer: checkpoint completeness of
// //gm:statemirror structs.
package snapstate

import (
	"sort"

	"mirrordep"
)

// Snap mirrors Good.
type Snap struct {
	Seq     uint64
	Queue   []int
	Repairs []int
	Mask    []bool
	Cell    mirrordep.CellState
	Units   []int
}

// Good is fully mirrored: every field is read by Snapshot (directly or via
// a same-package helper) and written by Restore (assignment, copy, keyed
// literal in a transitive callee, or a nested mirror's Restore). Nothing
// here is flagged.
//
//gm:statemirror Snapshot Restore
type Good struct {
	seq     uint64
	queue   []int
	repairs map[int]int
	mask    []bool
	cell    *mirrordep.Cell
	units   []*unit
	scratch []int //gm:ephemeral per-slot scratch, rebuilt each slot
}

// unit is a component restored in place through its pointer.
type unit struct{ v int }

// Snapshot captures the struct's state.
func (g *Good) Snapshot() Snap {
	s := Snap{Seq: g.seq, Cell: g.cell.State()}
	s.Queue = append(s.Queue, g.queue...)
	s.Repairs = snapRepairs(g)
	s.Mask = append(s.Mask, g.mask...)
	for _, u := range g.units {
		s.Units = append(s.Units, u.v)
	}
	return s
}

// snapRepairs is the transitive-callee read of g.repairs.
func snapRepairs(g *Good) []int {
	var out []int
	for n := range g.repairs {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Restore rebuilds a Good from a snapshot.
func Restore(s Snap) *Good {
	g := newGood()
	g.seq = s.Seq
	g.queue = append(g.queue, s.Queue...)
	for _, n := range s.Repairs {
		g.repairs[n] = n
	}
	copy(g.mask, s.Mask)
	g.cell.Restore(s.Cell)
	for i, v := range s.Units {
		// In-place restore through a pointer element: credits units.
		u := g.units[i]
		u.v = v
	}
	return g
}

// newGood is the transitive-callee keyed-literal write of repairs and mask.
// It deliberately does not touch cell: cell's restore credit must come from
// the nested g.cell.Restore call via mirrordep's exported facts.
func newGood() *Good {
	return &Good{repairs: map[int]int{}, mask: make([]bool, 4)}
}

// Leaky forgets both sides for one field and the restore side for another.
//
//gm:statemirror LeakySnap LeakyRestore
type Leaky struct {
	kept    int
	dropped int // want "field Leaky.dropped is not read by snapshot function LeakySnap" "field Leaky.dropped is not written by restore function LeakyRestore"
	halfway int // want "field Leaky.halfway is not written by restore function LeakyRestore"
}

// LeakySnap reads kept and halfway but not dropped.
func (l *Leaky) LeakySnap() (int, int) { return l.kept, l.halfway }

// LeakyRestore writes only kept.
func (l *Leaky) LeakyRestore(kept int) { l.kept = kept }

// NotAStruct cannot be mirrored field-by-field.
//
//gm:statemirror String Parse
type NotAStruct int // want "//gm:statemirror on non-struct type NotAStruct"

func (n NotAStruct) String() string { return "" }

// Parse is NotAStruct's restore side.
func Parse(string) NotAStruct { return 0 }

// Dangling names a snapshot function that does not exist.
//
//gm:statemirror Missing DanglingRestore
type Dangling struct { // want "names \"Missing\", which does not resolve"
	x int
}

// DanglingRestore writes x.
func (d *Dangling) DanglingRestore(x int) { d.x = x }

// Malformed has a directive without both specifiers.
//
//gm:statemirror OnlyOne // want "malformed //gm:statemirror"
type Malformed struct {
	y int
}

// base is a component embedded by value.
type base struct{ n int }

// side is a component embedded by pointer.
type side struct{ m int }

// Emb mixes embedded fields: base is mirrored through its implicit name,
// the pointer embed and the cross-package embed are forgotten on both
// sides.
//
//gm:statemirror EmbSnap EmbRestore
type Emb struct {
	base
	*side          // want "embedded field Emb.side is not read by snapshot function EmbSnap" "embedded field Emb.side is not written by restore function EmbRestore"
	mirrordep.Cell // want "embedded field Emb.Cell is not read by snapshot function EmbSnap" "embedded field Emb.Cell is not written by restore function EmbRestore"
}

// EmbSnap reads the base embed only.
func (e *Emb) EmbSnap() base { return e.base }

// EmbRestore writes the base embed only.
func (e *Emb) EmbRestore(b base) { e.base = b }

// Pos is restored with a positional literal, which credits every field.
//
//gm:statemirror PosSnap PosRestore
type Pos struct {
	a int
	b int
}

// PosSnap reads both fields, with an index read covering a.
func (p *Pos) PosSnap() (int, int) { return p.a, p.b }

// PosRestore rebuilds a Pos. The empty and foreign literals earn no
// credit; the keyed pointer-element literal and the positional return do.
func PosRestore(a, b int) *Pos {
	_ = &Pos{}
	_ = []int{a}
	tmp := []*Pos{{a: 1}}
	for range tmp {
	}
	tmp[0].b = b
	return &Pos{a, b}
}
