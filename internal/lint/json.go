package lint

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable form of one finding, shaped for
// CI annotation tooling (stable field names, 1-based line/column).
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// JSONReport is the envelope `gmlint -json` emits: the diagnostics plus any
// type-checker soft errors, and the analyzer set that ran (so a consumer
// can tell "clean" from "not checked").
type JSONReport struct {
	Analyzers   []string         `json:"analyzers"`
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
	TypeErrors  []string         `json:"type_errors,omitempty"`
}

// NewJSONReport assembles a report from a finished run. Diagnostics keep
// the position-sorted order Run produced. The Diagnostics slice is always
// non-nil so a clean run serializes as [] rather than null.
func NewJSONReport(analyzers []*Analyzer, diags []Diagnostic, soft []error) JSONReport {
	rep := JSONReport{Diagnostics: []JSONDiagnostic{}}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	for _, e := range soft {
		rep.TypeErrors = append(rep.TypeErrors, e.Error())
	}
	return rep
}

// WriteJSON serializes the report to w, indented, with a trailing newline.
func WriteJSON(w io.Writer, rep JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
