package lint

import "testing"

// TestModuleIsClean runs the full analyzer suite over the whole module —
// the same invocation as the CI `gmlint ./...` gate — and requires zero
// findings and zero type errors. A red run here means a violation crept
// in; fix it (or, for a justified escape, add a `//lint:allow <analyzer>
// <reason>` with the reasoning) rather than loosening the analyzer.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	diags, soft, err := LintModule(".", []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range soft {
		t.Errorf("type error: %v", e)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
