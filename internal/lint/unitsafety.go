package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// unitSinkPkgs are the package base names allowed to strip units from
// typed quantities: the units package itself (it implements the blessed
// helpers Over, Rate, KW, KWh, Watts, Wh, Scale) and the presentation /
// observability sinks, whose whole job is serializing quantities to raw
// numbers.
var unitSinkPkgs = map[string]bool{
	"units":  true,
	"report": true,
	"plot":   true,
	"audit":  true,
}

// UnitSafety flags code that silently strips or mixes the typed watt /
// watt-hour quantities from internal/units:
//
//   - a conversion of units.Power or units.Energy to a raw float (use the
//     named accessors Watts()/Wh()/KW()/KWh(), or stay in typed units);
//   - a direct conversion between Power and Energy (only Over and Rate may
//     cross the power/energy boundary, because the slot width must be
//     involved);
//   - an untyped numeric literal added to or subtracted from a typed
//     quantity (use a named scale constant such as units.KilowattHour).
//
// Conversions inside the units package and the report/plot/audit sinks
// are exempt.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "flag conversions of units.Power/units.Energy to raw floats, Power<->Energy " +
		"conversions that bypass Over/Rate, and bare numeric literals added to typed quantities",
	Run: runUnitSafety,
}

func runUnitSafety(pass *Pass) error {
	if unitSinkPkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, n)
			case *ast.BinaryExpr:
				checkUnitLiteralArith(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkUnitConversion flags T(x) conversions that strip units (T a raw
// float) or cross the Power/Energy boundary.
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	argT := pass.Info.TypeOf(call.Args[0])
	if argT == nil {
		return
	}
	fromKind := unitKind(argT)
	if fromKind == "" {
		return
	}
	dst := tv.Type
	toKind := unitKind(dst)
	if toKind != "" && toKind != fromKind {
		pass.Reportf(call.Pos(),
			"direct conversion of units.%s to units.%s bypasses the slot width; use Over or Rate",
			fromKind, toKind)
		return
	}
	if b, ok := dst.Underlying().(*types.Basic); ok && toKind == "" && b.Info()&types.IsFloat != 0 {
		accessor := "Watts() or KW()"
		if fromKind == "Energy" {
			accessor = "Wh() or KWh()"
		}
		pass.Reportf(call.Pos(),
			"conversion of units.%s to %s strips the unit; use %s, or keep the arithmetic in typed units",
			fromKind, dst.String(), accessor)
	}
}

// checkUnitLiteralArith flags `q + 1500`-style expressions: an untyped,
// non-zero numeric literal combined additively with a typed quantity.
func checkUnitLiteralArith(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	check := func(qty, other ast.Expr) {
		qt := pass.Info.TypeOf(qty)
		if qt == nil || unitKind(qt) == "" {
			return
		}
		lit, ok := ast.Unparen(other).(*ast.BasicLit)
		if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
			return
		}
		if tv, ok := pass.Info.Types[lit]; ok && tv.Value != nil && constant.Sign(tv.Value) == 0 {
			return // adding zero is unit-preserving and harmless
		}
		pass.Reportf(lit.Pos(),
			"bare numeric literal %s %s units.%s; use a named scale constant (units.Watt, units.KilowattHour, ...)",
			lit.Value, arithVerb(bin.Op), unitKind(qt))
	}
	check(bin.X, bin.Y)
	check(bin.Y, bin.X)
}

func arithVerb(op token.Token) string {
	if op == token.SUB {
		return "subtracted from"
	}
	return "added to"
}
