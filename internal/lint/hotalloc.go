package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc keeps the per-slot kernels allocation-free. The simulator's
// throughput targets (millions of slot-steps per arena sweep) hold only
// while the //gm:hotpath functions stay off the garbage collector's books;
// a single composite literal or boxed interface argument reintroduces a
// per-slot allocation that no test fails on but every benchmark pays for.
//
// In //gm:hotpath functions the analyzer flags the constructs that the
// compiler must heap-allocate (or that allocate in practice):
//
//   - make and new
//   - map and slice composite literals, and &T{...} literals
//   - func literals (closure environments live on the heap)
//   - non-constant string concatenation
//   - interface boxing: passing or converting a non-pointer concrete
//     value to an interface type
//
// Two regions are exempt: arguments to panic (a panicking slot is not a
// hot path), and code dominated by an observer nil-check (observation-on
// is the slow path by contract; observerhot already polices the guard).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "in //gm:hotpath functions, flag allocating constructs (make, new, map/slice/&T " +
		"literals, closures, string concatenation, interface boxing) outside observer guards",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasMark(fn.Doc, hotpathMark) {
				continue
			}
			w := &allocWalker{pass: pass, guard: &hotWalker{pass: pass}}
			w.walk(fn.Body)
		}
	}
	return nil
}

// allocWalker scans the unguarded region of one hot-path function.
type allocWalker struct {
	pass  *Pass
	guard *hotWalker // reused for its observer nil-check recognizer
	// claimed marks composite literals already reported as part of an
	// enclosing &T{...} so they are not reported twice.
	claimed map[ast.Node]bool
}

func (w *allocWalker) walk(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.IfStmt:
			if w.guard.isObserverNilCheck(c.Cond) {
				// The guarded body is the observation-on slow path. The
				// else branch and any init statement stay on the hot path.
				if c.Init != nil {
					w.walk(c.Init)
				}
				if c.Else != nil {
					w.walk(c.Else)
				}
				return false
			}
		case *ast.CallExpr:
			return w.call(c)
		case *ast.UnaryExpr:
			if c.Op == token.AND {
				if lit, ok := ast.Unparen(c.X).(*ast.CompositeLit); ok {
					if w.claimed == nil {
						w.claimed = map[ast.Node]bool{}
					}
					w.claimed[lit] = true
					w.pass.Reportf(c.Pos(),
						"&composite literal escapes to the heap on the hot path; hoist it and reuse")
				}
			}
		case *ast.CompositeLit:
			if !w.claimed[c] {
				switch w.pass.Info.TypeOf(c).Underlying().(type) {
				case *types.Map:
					w.pass.Reportf(c.Pos(), "map literal allocates on the hot path; hoist it and reuse")
				case *types.Slice:
					w.pass.Reportf(c.Pos(), "slice literal allocates on the hot path; hoist the buffer and reuse")
				}
			}
		case *ast.FuncLit:
			w.pass.Reportf(c.Pos(),
				"func literal allocates its environment on the hot path; hoist the closure or inline the logic")
			return false
		case *ast.BinaryExpr:
			if c.Op == token.ADD && isStringConcat(w.pass, c) {
				if w.claimed == nil {
					w.claimed = map[ast.Node]bool{}
				}
				if !w.claimed[c] {
					w.pass.Reportf(c.Pos(), "string concatenation allocates on the hot path")
				}
				// One finding per concat chain: a+b+c parses as (a+b)+c,
				// and the parent is always visited before its operands.
				w.claimed[ast.Unparen(c.X)] = true
				w.claimed[ast.Unparen(c.Y)] = true
			}
		}
		return true
	})
}

// call handles make/new, the panic exemption, and interface boxing at the
// call boundary. It returns false when the subtree should not be
// descended further.
func (w *allocWalker) call(call *ast.CallExpr) bool {
	switch obj := calleeObj(w.pass.Info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			w.pass.Reportf(call.Pos(), "make allocates on the hot path; hoist the buffer into the struct and reuse it")
		case "new":
			w.pass.Reportf(call.Pos(), "new allocates on the hot path; hoist the value and reuse it")
		case "panic":
			return false // a panicking slot is not a hot path
		}
		return true
	}
	// Conversion to an interface type: T(x) with interface T.
	if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(w.pass, call.Args[0]) {
			w.pass.Reportf(call.Pos(),
				"conversion of %s to interface type allocates (boxing) on the hot path",
				w.pass.Info.TypeOf(call.Args[0]))
		}
		return true
	}
	// Interface-typed parameters box concrete non-pointer arguments.
	if sig, ok := w.pass.Info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		for i, arg := range call.Args {
			pt, ok := paramType(sig, i, call.Ellipsis.IsValid())
			if !ok || !types.IsInterface(pt) {
				continue
			}
			if boxes(w.pass, arg) {
				w.pass.Reportf(arg.Pos(),
					"passing %s into an interface parameter allocates (boxing) on the hot path",
					w.pass.Info.TypeOf(arg))
			}
		}
	}
	return true
}

// paramType resolves the declared type of argument i, unwrapping the
// variadic element type when the call does not use ... spreading.
func paramType(sig *types.Signature, i int, ellipsis bool) (types.Type, bool) {
	params := sig.Params()
	if params.Len() == 0 {
		return nil, false
	}
	last := params.Len() - 1
	if sig.Variadic() && i >= last {
		if ellipsis {
			if i == last {
				return params.At(last).Type(), true
			}
			return nil, false
		}
		s, ok := params.At(last).Type().(*types.Slice)
		if !ok {
			return nil, false
		}
		return s.Elem(), true
	}
	if i > last {
		return nil, false
	}
	return params.At(i).Type(), true
}

// boxes reports whether passing arg to an interface-typed slot heap-boxes
// it: its static type is concrete and not a pointer (pointers fit in the
// interface word; interfaces and nil convert without allocating).
func boxes(pass *Pass, arg ast.Expr) bool {
	t := pass.Info.TypeOf(arg)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// Single-word reference types share the pointer fast path only for
		// pointers; chans/maps/funcs are pointers under the hood too.
		return false
	}
	return true
}

// isStringConcat reports whether the + expression is a non-constant string
// concatenation (constant folding is free).
func isStringConcat(pass *Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
