package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"go/types"
	"os"
	"strings"
	"testing"
)

// TestFactStore pins the store's semantics: dedup of identical triples,
// per-(analyzer, kind) lookup, and a deterministic sorted dump.
func TestFactStore(t *testing.T) {
	s := NewFactStore()
	pkg := types.NewPackage("example/p", "p")
	objA := types.NewVar(token.NoPos, pkg, "A", types.Typ[types.Int])
	objB := types.NewVar(token.NoPos, pkg, "B", types.Typ[types.Int])

	s.Export(objA, Fact{Analyzer: "x", Name: "mark", Detail: "one"})
	s.Export(objA, Fact{Analyzer: "x", Name: "mark", Detail: "one"}) // duplicate: collapses
	s.Export(objA, Fact{Analyzer: "x", Name: "mark", Detail: "two"})
	s.Export(objB, Fact{Analyzer: "y", Name: "other", Detail: ""})
	s.Export(nil, Fact{Analyzer: "x", Name: "mark", Detail: "ignored"})

	if f, ok := s.Get(objA, "x", "mark"); !ok || f.Detail != "one" {
		t.Errorf("Get(objA) = %+v, %v; want the first exported fact", f, ok)
	}
	if _, ok := s.Get(objA, "x", "absent"); ok {
		t.Error("Get with an unknown kind should miss")
	}
	if _, ok := s.Get(nil, "x", "mark"); ok {
		t.Error("Get(nil) should miss")
	}

	all := s.All()
	if len(all) != 3 {
		t.Fatalf("All() = %d facts %v, want 3 (duplicate collapsed, nil dropped)", len(all), all)
	}
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Object > b.Object {
			t.Errorf("All() not sorted: %q before %q", a.Object, b.Object)
		}
	}
	if all[0].Object != "example/p.A" {
		t.Errorf("qualifiedName = %q, want example/p.A", all[0].Object)
	}
}

// TestQualifiedName covers the method and no-package renderings.
func TestQualifiedName(t *testing.T) {
	pkg := types.NewPackage("example/p", "p")
	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	method := types.NewFunc(token.NoPos, pkg, "Close", sig)
	if got := qualifiedName(method); got != "example/p.T.Close" {
		t.Errorf("qualifiedName(method) = %q, want example/p.T.Close", got)
	}
	if got := qualifiedName(types.Universe.Lookup("len")); got != "len" {
		t.Errorf("qualifiedName(builtin) = %q, want bare name", got)
	}
}

// TestPassFactsNilStore proves a Pass built without a store ignores
// exports and misses imports instead of panicking.
func TestPassFactsNilStore(t *testing.T) {
	pkg := types.NewPackage("example/p", "p")
	obj := types.NewVar(token.NoPos, pkg, "A", types.Typ[types.Int])
	p := &Pass{Analyzer: SnapState}
	p.ExportObjectFact(obj, "restore", "T")
	if _, ok := p.ImportObjectFact(obj, "restore"); ok {
		t.Error("ImportObjectFact on a nil store should miss")
	}
}

// TestJSONReportShape pins the machine-readable envelope: analyzer names in
// suite order, positioned diagnostics, soft errors, and a clean run
// serializing as [] rather than null.
func TestJSONReportShape(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "snapstate",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "field T.b is not read",
	}}
	soft := []error{errString("x.go:1:1: undefined: y")}
	rep := NewJSONReport([]*Analyzer{SnapState, HotAlloc}, diags, soft)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if len(back.Analyzers) != 2 || back.Analyzers[0] != "snapstate" || back.Analyzers[1] != "hotalloc" {
		t.Errorf("analyzers = %v, want [snapstate hotalloc]", back.Analyzers)
	}
	if len(back.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %v, want 1", back.Diagnostics)
	}
	d := back.Diagnostics[0]
	if d.Analyzer != "snapstate" || d.File != "x.go" || d.Line != 3 || d.Column != 7 {
		t.Errorf("diagnostic = %+v, want analyzer/file/line/column preserved", d)
	}
	if len(back.TypeErrors) != 1 || !strings.Contains(back.TypeErrors[0], "undefined") {
		t.Errorf("type errors = %v, want the soft error", back.TypeErrors)
	}

	buf.Reset()
	if err := WriteJSON(&buf, NewJSONReport(nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty report should serialize diagnostics as []:\n%s", buf.String())
	}
}

// errString is a trivial error for report tests.
type errString string

func (e errString) Error() string { return string(e) }

// TestLintModuleNoModule covers the driver's loader-construction failure.
func TestLintModuleNoModule(t *testing.T) {
	if _, _, err := LintModule(t.TempDir(), []string{"./..."}, Analyzers()); err == nil {
		t.Error("LintModule outside any module should fail")
	}
}

// TestLintModuleSoftErrors proves analysis is best-effort under type
// errors: the driver surfaces them as soft errors rather than aborting.
func TestLintModuleSoftErrors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/go.mod", "module tmp\n\ngo 1.22\n")
	writeFile(t, dir+"/a.go", "package a\n\nfunc f() { undefined() }\n")
	writeFile(t, dir+"/empty.txt", "no go files here\n")
	diags, soft, err := LintModule(dir, nil, Analyzers())
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	if len(soft) == 0 {
		t.Error("want the undefined-identifier type error as a soft error")
	}
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBareEphemeralMark runs snapstate directly over the snapstatebad
// fixture: a reasonless //gm:ephemeral is itself a finding and does not
// excuse the field. Checked directly because the diagnostic lands on the
// mark's own line, where a want comment would become part of the reason.
func TestBareEphemeralMark(t *testing.T) {
	pkg, err := NewFixtureLoader(srcRoot).Load("snapstatebad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{SnapState})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the malformed-mark finding", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed //gm:ephemeral") {
		t.Errorf("diagnostic %q, want a malformed //gm:ephemeral finding", diags[0].Message)
	}
}
