package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObserverHot protects the zero-cost-when-disabled observability
// contract: the per-slot hot path pays exactly one nil check when no
// observer is attached (measured ~0.6% overhead with the check in place).
//
// Functions annotated //gm:hotpath in their doc comment are checked:
//
//   - calls into the fmt package (formatting allocates) must be guarded
//     by an `x != nil` check on an audit-typed expression — except fmt
//     calls that only feed a panic, which is not a hot path;
//   - any use of an audit-typed expression (an Observer method call, a
//     SlotTrace literal, passing an observer along) must sit under such
//     a guard, other than the nil comparison itself;
//   - calls to functions annotated //gm:observed (trace assemblers whose
//     contract is "caller guards") must sit under such a guard.
var ObserverHot = &Analyzer{
	Name: "observerhot",
	Doc: "in //gm:hotpath functions, flag fmt calls and observer/audit uses that are not " +
		"guarded by a nil-observer check",
	Run: runObserverHot,
}

const (
	hotpathMark  = "gm:hotpath"
	observedMark = "gm:observed"
)

func runObserverHot(pass *Pass) error {
	observed := map[types.Object]bool{}
	var hot []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasMark(fn.Doc, observedMark) {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					observed[obj] = true
				}
			}
			if hasMark(fn.Doc, hotpathMark) {
				hot = append(hot, fn)
			}
		}
	}
	for _, fn := range hot {
		checkHotFunc(pass, fn, observed)
	}
	return nil
}

func hasMark(doc *ast.CommentGroup, mark string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, mark) {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot-path function body tracking, via a recursive
// descent, whether the current node is dominated by a nil-observer guard.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl, observed map[types.Object]bool) {
	if fn.Body == nil {
		return
	}
	w := &hotWalker{pass: pass, observed: observed}
	w.node(fn.Body, false)
}

type hotWalker struct {
	pass     *Pass
	observed map[types.Object]bool
}

// node visits n with the given guard state. It special-cases the
// constructs that change guardedness (if statements with nil checks) or
// that must not be reported (the nil comparison itself, panic arguments).
func (w *hotWalker) node(n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.IfStmt:
		if n.Init != nil {
			w.node(n.Init, guarded)
		}
		g := guarded || w.isObserverNilCheck(n.Cond)
		// The condition itself may mention the observer: allowed.
		w.node(n.Body, g)
		if n.Else != nil {
			// The else branch of `x != nil` is the observer-off path.
			w.node(n.Else, guarded)
		}
	case *ast.CallExpr:
		w.call(n, guarded)
	case *ast.CompositeLit:
		if !guarded && isAuditType(w.pass.Info.TypeOf(n)) {
			w.pass.Reportf(n.Pos(),
				"audit-typed literal on the hot path without a nil-observer guard (trace assembly must be free when observation is off)")
		}
		for _, e := range n.Elts {
			w.node(e, guarded)
		}
	case *ast.Ident, *ast.SelectorExpr:
		// Roots handed over directly (a call receiver, an argument): check
		// them here, since walkChildren only inspects proper children.
		if w.checkAuditUse(n.(ast.Expr), guarded) {
			return
		}
		w.walkChildren(n, guarded)
	default:
		w.walkChildren(n, guarded)
	}
}

// walkChildren visits the direct children of n with the same guard state,
// reporting unguarded audit-typed identifiers/selectors it encounters.
func (w *hotWalker) walkChildren(n ast.Node, guarded bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		switch c := c.(type) {
		case *ast.IfStmt, *ast.CallExpr, *ast.CompositeLit:
			w.node(c, guarded)
			return false
		case *ast.Ident:
			w.checkAuditUse(c, guarded)
		case *ast.SelectorExpr:
			if w.checkAuditUse(c, guarded) {
				return false
			}
		}
		return true
	})
}

// checkAuditUse reports e when it is an unguarded audit-typed value use.
// It returns true when e was audit-typed (guarded or not).
func (w *hotWalker) checkAuditUse(e ast.Expr, guarded bool) bool {
	t := w.pass.Info.TypeOf(e)
	if t == nil || !isAuditType(t) {
		return false
	}
	// Only value uses count; a bare type name (e.g. in a declaration or
	// conversion) is free.
	if tv, ok := w.pass.Info.Types[e]; ok && tv.IsType() {
		return true
	}
	if !guarded {
		w.pass.Reportf(e.Pos(),
			"use of audit-typed value on the hot path without a nil-observer guard")
	}
	return true
}

// call handles call expressions: panic(fmt...) exemption, fmt flagging,
// //gm:observed callee flagging.
func (w *hotWalker) call(call *ast.CallExpr, guarded bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return // a panicking slot is not a hot path; fmt.Sprintf here is fine
		}
	}
	obj := calleeObj(w.pass.Info, call)
	if !guarded && obj != nil {
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			w.pass.Reportf(call.Pos(),
				"fmt.%s on the hot path without a nil-observer guard (formatting allocates every slot)",
				obj.Name())
		}
		if w.observed[obj] {
			w.pass.Reportf(call.Pos(),
				"call to //gm:observed function %s without a nil-observer guard; its contract is \"caller guards\"",
				obj.Name())
		}
	}
	// Receiver of a method call, and arguments, are still value uses.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.node(sel.X, guarded)
	}
	for _, arg := range call.Args {
		w.node(arg, guarded)
	}
}

// isObserverNilCheck reports whether cond contains `x != nil` (possibly
// &&-combined) where x is audit-typed.
func (w *hotWalker) isObserverNilCheck(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return w.isObserverNilCheck(c.X) || w.isObserverNilCheck(c.Y)
		case token.NEQ:
			if isNilIdent(w.pass, c.Y) && isAuditType(w.pass.Info.TypeOf(c.X)) {
				return true
			}
			if isNilIdent(w.pass, c.X) && isAuditType(w.pass.Info.TypeOf(c.Y)) {
				return true
			}
		}
	}
	return false
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}
