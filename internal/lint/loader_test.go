package lint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeFixtureTree materializes a throwaway GOPATH-src-style root so the
// loader's failure paths can be exercised without committing broken Go
// files (which would trip gofmt and editor tooling) to testdata.
func writeFixtureTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderParseError(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"broken/broken.go": "package broken\nfunc {",
	})
	if _, err := NewFixtureLoader(root).Load("broken"); err == nil {
		t.Error("Load of unparsable package: want error, got nil")
	}
}

func TestLoaderEmptyDir(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"empty/README.txt": "no Go files here",
	})
	if _, err := NewFixtureLoader(root).Load("empty"); err == nil {
		t.Error("Load of directory without Go files: want error, got nil")
	}
}

func TestLoaderImportCycle(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"cyca/a.go": "package cyca\n\nimport _ \"cycb\"\n",
		"cycb/b.go": "package cycb\n\nimport _ \"cyca\"\n",
	})
	loader := NewFixtureLoader(root)
	if _, err := loader.Load("cyca"); err != nil {
		t.Fatalf("cycle surfaced as hard error %v; want soft type errors", err)
	}
	// The in-progress guard fires while cycb (mid-load) re-imports cyca,
	// so the cycle is recorded as cycb's type error.
	inner, err := loader.Load("cycb")
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.TypeErrors) == 0 {
		t.Error("import cycle: want type errors recording the cycle, got none")
	}
}

// TestLoaderImporterInterface drives the types.Importer entry points
// directly: unsafe, a fixture package, the per-path cache, and stdlib
// fallthrough to the source importer.
func TestLoaderImporterInterface(t *testing.T) {
	loader := NewFixtureLoader(srcRoot)
	u, err := loader.Import("unsafe")
	if err != nil || u.Path() != "unsafe" {
		t.Fatalf("Import(unsafe) = %v, %v", u, err)
	}
	p1, err := loader.Import("units")
	if err != nil || p1.Name() != "units" {
		t.Fatalf("Import(units) = %v, %v", p1, err)
	}
	p2, err := loader.Import("units")
	if err != nil || p2 != p1 {
		t.Errorf("second Import(units) = %v, %v; want the cached package", p2, err)
	}
	std, err := loader.Import("strings")
	if err != nil || std.Name() != "strings" {
		t.Errorf("Import(strings) via the source importer = %v, %v", std, err)
	}
}

// TestRunAnalyzerError covers the driver path where an analyzer itself
// fails (as opposed to reporting diagnostics).
func TestRunAnalyzerError(t *testing.T) {
	pkg, err := NewFixtureLoader(srcRoot).Load("mismatch")
	if err != nil {
		t.Fatal(err)
	}
	boom := &Analyzer{Name: "boom", Doc: "always fails", Run: func(*Pass) error {
		return errors.New("kaboom")
	}}
	if _, err := Run(pkg, []*Analyzer{boom}); err == nil {
		t.Error("Run with a failing analyzer: want error, got nil")
	}
}

// TestCollectWantsErrors covers the fixture harness's malformed-want
// paths: a want with no quoted regexp, and one that does not compile.
func TestCollectWantsErrors(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"noquote/a.go":  "package noquote\n\n// want no quoted regexp\nvar X = 0\n",
		"badregex/a.go": "package badregex\n\n// want \"(\"\nvar X = 0\n",
	})
	for _, path := range []string{"noquote", "badregex"} {
		if _, err := RunFixture(root, path, FloatEq); err == nil {
			t.Errorf("RunFixture(%s): want error, got nil", path)
		}
	}
}

// TestIncludeTests checks the loader's test-file policy: gmlint skips
// _test.go sources by default and picks them up when asked.
func TestIncludeTests(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"pkg/a.go":      "package pkg\n\nvar A = 0\n",
		"pkg/a_test.go": "package pkg\n\nvar B = A\n",
	})
	pkg, err := NewFixtureLoader(root).Load("pkg")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(pkg.Files); n != 1 {
		t.Errorf("default loader parsed %d files, want 1 (tests excluded)", n)
	}
	withTests := NewFixtureLoader(root)
	withTests.IncludeTests = true
	pkg2, err := withTests.Load("pkg")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(pkg2.Files); n != 2 {
		t.Errorf("IncludeTests loader parsed %d files, want 2", n)
	}
}
