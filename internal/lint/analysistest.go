package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// expectation is one `// want "regex"` annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture loads the fixture package at srcRoot/<path> (analysistest
// layout: the directory name is the import path) and checks the
// analyzers' post-suppression diagnostics against the `// want "regex"`
// comments in its sources: every diagnostic must match a want on its
// line, and every want must be matched. It returns the list of failures,
// empty on success — callers in tests report each entry with t.Errorf.
func RunFixture(srcRoot, path string, analyzers ...*Analyzer) ([]string, error) {
	loader := NewFixtureLoader(srcRoot)
	pkg, err := loader.Load(path)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("fixture %s has type errors: %v", path, pkg.TypeErrors)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := collectWants(pkg.Dir)
	if err != nil {
		return nil, err
	}

	var failures []string
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.matched {
				continue // each want accounts for exactly one diagnostic
			}
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("unexpected diagnostic %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			failures = append(failures, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw))
		}
	}
	return failures, nil
}

// collectWants scans the fixture directory's .go files for want comments.
func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", e.Name(), i+1, line)
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re, raw: a[1]})
			}
		}
	}
	return wants, nil
}
