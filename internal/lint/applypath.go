package lint

import (
	"go/ast"
	"go/types"
)

// ApplyPath polices the serve layer's crash-consistency contract: every
// live-scheduler mutation must be journaled before it is applied, which is
// only true if all mutations flow through the single journaled apply
// function. A mutation invoked anywhere else is acknowledged state the
// journal cannot replay — exactly the bug class PR 8's recovery tests
// cannot catch, because they only exercise the sanctioned path.
//
// Mutating methods opt in with //gm:mutator in their doc comment (Submit,
// InjectFault, StepTo, Finalize, the supply overrides). The sanctioned
// caller opts in with //gm:applypath. The analyzer then flags every call
// to a mutator from any other function. Two exemptions are structural:
//
//   - the mutator's own package (the type implements its mutators; the
//     boundary being policed is external callers), and
//   - _test.go files, which gmlint never loads (IncludeTests=false) —
//     chaos and recovery tests drive mutators directly by design.
var ApplyPath = &Analyzer{
	Name: "applypath",
	Doc: "flag calls to //gm:mutator functions outside a //gm:applypath function; " +
		"live-state mutations must flow through the journaled apply path",
	Run:         runApplyPath,
	ExportFacts: exportApplyPathFacts,
}

const (
	mutatorMark   = "gm:mutator"
	applypathMark = "gm:applypath"

	factMutator = "mutator"
)

// exportApplyPathFacts records every //gm:mutator function, keyed by its
// object, with the receiver-qualified name as the detail (for messages in
// dependent packages).
func exportApplyPathFacts(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !hasMark(fn.Doc, mutatorMark) {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			name := fn.Name.Name
			if recv := recvTypeName(fn); recv != "" {
				name = recv + "." + name
			}
			pass.ExportObjectFact(obj, factMutator, name)
		}
	}
}

// recvTypeName returns the receiver's type name ("Live" for *Live), or ""
// for a package-level function.
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

func runApplyPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasMark(fn.Doc, applypathMark) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj, ok := calleeObj(pass.Info, call).(*types.Func)
				if !ok {
					return true
				}
				// The defining package is exempt: Live's own methods may
				// compose mutators, and core's recovery code rebuilds state.
				if obj.Pkg() == pass.Pkg {
					return true
				}
				if fact, ok := pass.ImportObjectFact(obj, factMutator); ok {
					pass.Reportf(call.Pos(),
						"call to //gm:mutator %s outside a //gm:applypath function; "+
							"live-state mutations must be journaled before they are applied",
						fact.Detail)
				}
				return true
			})
		}
	}
	return nil
}
