package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapState statically proves checkpoint completeness for the structs that
// participate in crash-recovery state mirroring. PR 8 made recovery
// byte-identical; that guarantee dies silently the first time a stateful
// field is added to a mirrored struct without a snapshot mirror — the
// restored run diverges only on inputs the chaos seeds happen to miss.
//
// A struct opts in with a directive in its doc comment:
//
//	//gm:statemirror <snapshot> <restore>
//
// where <snapshot> and <restore> each name the function implementing that
// side of the mirror: a method of the annotated type ("State"), a method of
// another type in the same package ("Live.Snapshot"), or a package-level
// function ("RestoreEngine"). For every field of the annotated struct the
// analyzer then requires both:
//
//   - the field is read in the snapshot function (or a same-package
//     function it transitively calls), and
//   - the field is written in the restore function (assignment target,
//     copy destination, keyed composite literal, address taken, or the
//     receiver of another mirrored type's restore method — the last
//     resolved through cross-package facts, so `s.bat.Restore(snap)` in
//     internal/core counts because internal/battery declared Restore as
//     Battery's restore side).
//
// Fields that are deliberately not mirrored — per-slot scratch, caches
// rebuilt from Config, derived masks — must say so explicitly:
//
//	coverCache map[string][]DiskID //gm:ephemeral memoization, rebuilt on demand
//
// A bare //gm:ephemeral without a reason is itself a finding: unexplained
// escapes are exactly the drift this analyzer exists to prevent.
var SnapState = &Analyzer{
	Name: "snapstate",
	Doc: "for //gm:statemirror structs, require every field to be read by the snapshot " +
		"function and written by the restore function, unless marked //gm:ephemeral <reason>",
	Run:         runSnapState,
	ExportFacts: exportSnapStateFacts,
}

const (
	statemirrorMark = "gm:statemirror"
	ephemeralMark   = "gm:ephemeral"

	factMirrored = "mirrored"
	factSnapshot = "snapshot"
	factRestore  = "restore"
)

// mirrorPair is one resolved statemirror directive.
type mirrorPair struct {
	typeName string
	named    *types.Named
	strct    *ast.StructType
	snapFn   *types.Func
	restFn   *types.Func
}

// parseMirrorDirective extracts the two specifier fields from a
// //gm:statemirror comment line, reporting malformed directives.
func parseMirrorDirective(pass *Pass, doc *ast.CommentGroup, report bool) (snap, rest string, ok bool) {
	for _, c := range doc.List {
		idx := strings.Index(c.Text, statemirrorMark)
		if idx < 0 {
			continue
		}
		fields := strings.Fields(c.Text[idx+len(statemirrorMark):])
		if len(fields) != 2 {
			if report {
				pass.Reportf(c.Pos(),
					"malformed //gm:statemirror: want `//gm:statemirror <snapshotFunc> <restoreFunc>`")
			}
			return "", "", false
		}
		return fields[0], fields[1], true
	}
	return "", "", false
}

// mirrorPairs resolves every //gm:statemirror directive in the package.
// When report is true (the Run phase), malformed directives and
// unresolvable specifiers are diagnosed; the fact-export phase stays
// silent to avoid duplicating diagnostics across dependent packages.
func mirrorPairs(pass *Pass, report bool) []mirrorPair {
	var pairs []mirrorPair
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil || !hasMark(doc, statemirrorMark) {
					continue
				}
				snapSpec, restSpec, ok := parseMirrorDirective(pass, doc, report)
				if !ok {
					continue
				}
				strct, ok := ts.Type.(*ast.StructType)
				if !ok {
					if report {
						pass.Reportf(ts.Pos(), "//gm:statemirror on non-struct type %s", ts.Name.Name)
					}
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				pair := mirrorPair{typeName: ts.Name.Name, named: named, strct: strct}
				pair.snapFn = resolveMirrorFunc(pass, named, snapSpec)
				pair.restFn = resolveMirrorFunc(pass, named, restSpec)
				if pair.snapFn == nil || pair.restFn == nil {
					if report {
						missing := snapSpec
						if pair.snapFn != nil {
							missing = restSpec
						}
						pass.Reportf(ts.Pos(),
							"//gm:statemirror on %s names %q, which does not resolve to a function in this package",
							ts.Name.Name, missing)
					}
					continue
				}
				pairs = append(pairs, pair)
			}
		}
	}
	return pairs
}

// resolveMirrorFunc resolves a directive specifier: "Method" (on the
// annotated type, falling back to a package-level function), or
// "Type.Method" (on another type in the package).
func resolveMirrorFunc(pass *Pass, named *types.Named, spec string) *types.Func {
	if recv, meth, ok := strings.Cut(spec, "."); ok {
		obj := pass.Pkg.Scope().Lookup(recv)
		tn, isType := obj.(*types.TypeName)
		if !isType {
			return nil
		}
		other, isNamed := tn.Type().(*types.Named)
		if !isNamed {
			return nil
		}
		return methodNamed(other, meth)
	}
	if m := methodNamed(named, spec); m != nil {
		return m
	}
	if fn, ok := pass.Pkg.Scope().Lookup(spec).(*types.Func); ok {
		return fn
	}
	return nil
}

func methodNamed(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// exportSnapStateFacts records the mirror topology of one package: the
// mirrored type, its snapshot function and its restore function. Dependent
// packages' Run phases import the restore/snapshot facts to credit nested
// mirror calls (s.bat.Restore(...)) as field coverage.
func exportSnapStateFacts(pass *Pass) {
	for _, pair := range mirrorPairs(pass, false) {
		pass.ExportObjectFact(pair.named.Obj(), factMirrored, pair.typeName)
		pass.ExportObjectFact(pair.snapFn, factSnapshot, pair.typeName)
		pass.ExportObjectFact(pair.restFn, factRestore, pair.typeName)
	}
}

func runSnapState(pass *Pass) error {
	decls := funcDeclIndex(pass)
	for _, pair := range mirrorPairs(pass, true) {
		checkMirrorPair(pass, pair, decls)
	}
	return nil
}

// funcDeclIndex maps every function/method object declared in the package
// to its declaration, for the transitive-callee walks.
func funcDeclIndex(pass *Pass) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					idx[obj] = fn
				}
			}
		}
	}
	return idx
}

// checkMirrorPair verifies field coverage for one annotated struct.
func checkMirrorPair(pass *Pass, pair mirrorPair, decls map[types.Object]*ast.FuncDecl) {
	read := map[string]bool{}
	written := map[string]bool{}
	walkMirrorFunc(pass, pair, pass.Facts, decls, pair.snapFn, false, read)
	walkMirrorFunc(pass, pair, pass.Facts, decls, pair.restFn, true, written)

	for _, field := range pair.strct.Fields.List {
		reason, marked, malformed := ephemeralReason(field)
		if malformed != nil {
			pass.Reportf(malformed.Pos(),
				"malformed //gm:ephemeral: want `//gm:ephemeral <reason>` explaining why the field needs no mirror")
			continue
		}
		if marked && reason != "" {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if !read[name.Name] {
				pass.Reportf(name.Pos(),
					"field %s.%s is not read by snapshot function %s; mirror it in the snapshot or mark it //gm:ephemeral <reason>",
					pair.typeName, name.Name, pair.snapFn.Name())
			}
			if !written[name.Name] {
				pass.Reportf(name.Pos(),
					"field %s.%s is not written by restore function %s; restore it or mark it //gm:ephemeral <reason>",
					pair.typeName, name.Name, pair.restFn.Name())
			}
		}
		// Embedded fields: covered by the spelled-out name of the type.
		if len(field.Names) == 0 {
			name := embeddedFieldName(field.Type)
			if name == "" {
				continue
			}
			if !read[name] {
				pass.Reportf(field.Pos(),
					"embedded field %s.%s is not read by snapshot function %s; mirror it in the snapshot or mark it //gm:ephemeral <reason>",
					pair.typeName, name, pair.snapFn.Name())
			}
			if !written[name] {
				pass.Reportf(field.Pos(),
					"embedded field %s.%s is not written by restore function %s; restore it or mark it //gm:ephemeral <reason>",
					pair.typeName, name, pair.restFn.Name())
			}
		}
	}
}

// embeddedFieldName returns the implicit field name of an embedded type.
func embeddedFieldName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedFieldName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// ephemeralReason scans a struct field's doc and line comments for the
// //gm:ephemeral mark, returning the reason text. A mark with an empty
// reason returns the offending comment for reporting.
func ephemeralReason(field *ast.Field) (reason string, marked bool, malformed *ast.Comment) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			idx := strings.Index(c.Text, ephemeralMark)
			if idx < 0 {
				continue
			}
			reason = strings.TrimSpace(c.Text[idx+len(ephemeralMark):])
			if reason == "" {
				return "", true, c
			}
			return reason, true, nil
		}
	}
	return "", false, nil
}

// mirrorWalker accumulates field accesses of one annotated struct across a
// function and its same-package transitive callees.
type mirrorWalker struct {
	pass    *Pass
	pair    mirrorPair
	facts   *FactStore
	decls   map[types.Object]*ast.FuncDecl
	writes  bool // collecting the restore side
	touched map[string]bool
	visited map[types.Object]bool
}

// walkMirrorFunc drives a mirrorWalker from fn.
func walkMirrorFunc(pass *Pass, pair mirrorPair, facts *FactStore, decls map[types.Object]*ast.FuncDecl, fn *types.Func, writes bool, touched map[string]bool) {
	w := &mirrorWalker{
		pass: pass, pair: pair, facts: facts, decls: decls,
		writes: writes, touched: touched,
		visited: map[types.Object]bool{},
	}
	w.walkFn(fn)
}

func (w *mirrorWalker) walkFn(fn *types.Func) {
	if w.visited[fn] {
		return
	}
	w.visited[fn] = true
	decl, ok := w.decls[fn]
	if !ok || decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !w.writes {
				if name, ok := w.fieldOfPair(n); ok {
					w.touched[name] = true
				}
			}
		case *ast.AssignStmt:
			if w.writes {
				for _, lhs := range n.Lhs {
					w.markWrites(lhs)
				}
			}
		case *ast.IncDecStmt:
			if w.writes {
				w.markWrites(n.X)
			}
		case *ast.IndexExpr:
			// s.field[i] where the element is a pointer: grabbing an element
			// handle is the idiomatic in-place restore (n := c.nodes[i];
			// n.Powered = ...). Non-pointer elements get no credit.
			if w.writes {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					if name, ok := w.fieldOfPair(sel); ok && isPointer(w.pass.Info.TypeOf(n)) {
						w.touched[name] = true
					}
				}
			}
		case *ast.RangeStmt:
			// for _, n := range s.field with pointer elements: same in-place
			// restore idiom as indexing.
			if w.writes && n.Value != nil && isPointer(w.pass.Info.TypeOf(n.Value)) {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					if name, ok := w.fieldOfPair(sel); ok {
						w.touched[name] = true
					}
				}
			}
		case *ast.UnaryExpr:
			// &x.field hands the field out for mutation: conservatively a
			// write (and on the read side, selector inspection covers it).
			if w.writes && n.Op.String() == "&" {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					if name, ok := w.fieldOfPair(sel); ok {
						w.touched[name] = true
					}
				}
			}
		case *ast.CompositeLit:
			if w.writes {
				w.markCompositeWrites(n)
			}
		case *ast.CallExpr:
			w.handleCall(n)
		}
		return true
	})
}

// isPointer reports whether t is a pointer type.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// fieldOfPair reports whether sel selects a field of the annotated struct,
// returning the field name.
func (w *mirrorWalker) fieldOfPair(sel *ast.SelectorExpr) (string, bool) {
	s, ok := w.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj() != w.pair.named.Obj() {
		return "", false
	}
	// Only fields declared directly on the struct count (not promoted).
	if len(s.Index()) != 1 {
		return "", false
	}
	return sel.Sel.Name, true
}

// markWrites records fields of the pair appearing anywhere inside an
// assignment target: `s.f = v`, `s.f.Inner = v`, `s.f[k] = v`.
func (w *mirrorWalker) markWrites(lhs ast.Expr) {
	ast.Inspect(lhs, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if name, ok := w.fieldOfPair(sel); ok {
				w.touched[name] = true
			}
		}
		return true
	})
}

// markCompositeWrites credits keyed composite literals of the annotated
// type: `&Engine{cfg: cfg}` writes cfg. An unkeyed literal of the type
// writes every field.
func (w *mirrorWalker) markCompositeWrites(lit *ast.CompositeLit) {
	t := w.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() != w.pair.named.Obj() {
		return
	}
	if len(lit.Elts) == 0 {
		return
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		// Positional literal: all fields initialized.
		for _, f := range w.pair.strct.Fields.List {
			for _, n := range f.Names {
				w.touched[n.Name] = true
			}
		}
		return
	}
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				w.touched[id.Name] = true
			}
		}
	}
}

// handleCall follows same-package callees, credits copy destinations, and
// credits nested mirror calls on fields via imported facts.
func (w *mirrorWalker) handleCall(call *ast.CallExpr) {
	obj := calleeObj(w.pass.Info, call)
	if obj == nil {
		return
	}
	if b, ok := obj.(*types.Builtin); ok {
		// copy(s.field, src) writes into the field's backing array.
		if w.writes && b.Name() == "copy" && len(call.Args) == 2 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if name, ok := w.fieldOfPair(sel); ok {
					w.touched[name] = true
				}
			}
		}
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	// s.field.Restore(...) / s.field.State() where the method is the
	// restore/snapshot side of the field type's own mirror pair — resolved
	// through facts, which is what lets internal/core credit mirrors
	// declared in internal/battery, internal/storage, internal/fault.
	if w.facts != nil {
		want := factSnapshot
		if w.writes {
			want = factRestore
		}
		if _, isMirror := w.facts.Get(fn, w.pass.Analyzer.Name, want); isMirror {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if name, ok := w.fieldOfPair(recv); ok {
						w.touched[name] = true
					}
				}
			}
		}
	}
	// Transitive same-package callees (snapJobs, NewEngine, ...). This
	// deliberately credits constructor reuse on the restore side: a field
	// the constructor initializes from Config is correctly "restored" by
	// rebuilding, and the snapshot-side read requirement still forces
	// genuinely mutable state into the snapshot.
	if fn.Pkg() == w.pass.Pkg {
		w.walkFn(fn)
	}
}
