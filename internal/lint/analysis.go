// Package lint implements gmlint, the GreenMatch domain-linter suite: a
// small set of static analyzers that enforce, at compile time, the
// invariants the simulator otherwise only checks at runtime — typed
// watt/watt-hour accounting (unitsafety), byte-reproducible runs
// (determinism), epsilon-disciplined float comparison (floateq), and the
// zero-cost-when-disabled observability contract (observerhot).
//
// The package is deliberately self-contained: it mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic, testdata
// fixtures with `// want` comments) but is built only on the standard
// library's go/ast, go/parser, go/types and go/importer, so the module
// keeps its zero-dependency property. See docs/LINTING.md for the analyzer
// catalog and the suppression syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer closely enough that the rules
// could be ported to a vettool unchanged if the dependency ever lands.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics and in
	// //lint:allow suppression comments.
	Name string
	// Doc is the one-paragraph description shown by `gmlint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// ExportFacts, optional, scans one package and records object facts
	// (see FactStore) that Run may import from any package. The driver
	// invokes it over the analyzed package's module-internal dependency
	// closure before Run, so cross-package facts are visible regardless of
	// the order packages are analyzed in. It must only export facts —
	// Reportf from this hook would duplicate diagnostics across dependents.
	ExportFacts func(*Pass)
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checker's package object.
	Pkg *types.Package
	// Info holds the type-checking results for Files.
	Info *types.Info
	// Facts is the cross-package fact store for this analysis run (nil in
	// passes that neither export nor import facts).
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full gmlint suite in stable order: the original
// four domain analyzers followed by the recovery-safety suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		UnitSafety,
		Determinism,
		FloatEq,
		ObserverHot,
		SnapState,
		ApplyPath,
		DurabilityErr,
		HotAlloc,
	}
}

// Run applies the given analyzers to one loaded package and returns the
// diagnostics that survive //lint:allow suppression, sorted by position.
// Before any analyzer runs, every analyzer's ExportFacts hook is applied
// over the package's module-internal dependency closure, so cross-package
// facts (mutator annotations, state-mirror pairs) are in scope.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	store := NewFactStore()
	exportFactsClosure(store, pkg, analyzers)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    store,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	extra := applySuppressions(pkg, &diags)
	diags = append(diags, extra...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// --- shared type/package predicates used by the analyzers ---

// pkgBase returns the last path element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isPkg reports whether path denotes the named domain package, matching
// either the bare fixture form ("units") or any real module form
// (".../internal/units").
func isPkg(path, base string) bool {
	return pkgBase(path) == base
}

// unitKind reports which units quantity t is: "Power", "Energy", or ""
// when t is neither. It matches by named type from any package whose base
// name is "units", so analysistest fixtures can supply a stand-in package.
func unitKind(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !isPkg(obj.Pkg().Path(), "units") {
		return ""
	}
	switch obj.Name() {
	case "Power", "Energy":
		return obj.Name()
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point kind
// (this includes named float types such as units.Power).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isAuditType reports whether t is (or points to) a named type defined in
// an audit package.
func isAuditType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			obj := u.Obj()
			return obj.Pkg() != nil && isPkg(obj.Pkg().Path(), "audit")
		default:
			return false
		}
	}
}

// calleeObj resolves the called function object of a call expression, or
// nil for calls through non-identifier expressions (function values etc.).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
