package metrics

import (
	"strings"
	"testing"
)

func TestSLAAccountSub(t *testing.T) {
	prev := SLAAccount{Submitted: 10, Completed: 8, DeadlineMisses: 1,
		TotalWaitSlots: 20, MaxWaitSlots: 5, Migrations: 3, Suspensions: 2,
		ColdReads: 4, UnservedReads: 1, NodeFailures: 1, Evictions: 2,
		RepairJobsGenerated: 1, OverloadEvents: 1, OverloadMigrations: 1,
		ThrottledSlots: 1}
	cur := SLAAccount{Submitted: 15, Completed: 12, DeadlineMisses: 2,
		TotalWaitSlots: 31, MaxWaitSlots: 7, Migrations: 6, Suspensions: 5,
		ColdReads: 9, UnservedReads: 2, NodeFailures: 2, Evictions: 4,
		RepairJobsGenerated: 3, OverloadEvents: 2, OverloadMigrations: 3,
		ThrottledSlots: 2}
	d := cur.Sub(prev)
	want := SLAAccount{Submitted: 5, Completed: 4, DeadlineMisses: 1,
		TotalWaitSlots: 11, MaxWaitSlots: 2, Migrations: 3, Suspensions: 3,
		ColdReads: 5, UnservedReads: 1, NodeFailures: 1, Evictions: 2,
		RepairJobsGenerated: 2, OverloadEvents: 1, OverloadMigrations: 2,
		ThrottledSlots: 1}
	if d != want {
		t.Fatalf("Sub = %+v\nwant %+v", d, want)
	}
	if z := cur.Sub(cur); z != (SLAAccount{}) {
		t.Fatalf("Sub with itself = %+v, want zero", z)
	}
}

func TestTimeSeriesColumnAllNames(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(SlotSample{Slot: 0, DemandW: 1, GreenW: 2, GreenUsedW: 3,
		BatteryOutW: 4, BatteryInW: 5, GreenLostW: 6, BrownW: 7,
		BatterySoC: 0.5, NodesOn: 8, DisksSpun: 9, JobsRunning: 10,
		JobsWaiting: 11})
	want := map[string]float64{
		"demand": 1, "green": 2, "green_used": 3, "battery_out": 4,
		"battery_in": 5, "green_lost": 6, "brown": 7, "soc": 0.5,
		"nodes_on": 8, "disks_spun": 9, "jobs_running": 10, "jobs_waiting": 11,
	}
	for name, v := range want {
		col, err := ts.Column(name)
		if err != nil {
			t.Fatalf("Column(%q): %v", name, err)
		}
		if len(col) != 1 || col[0] != v {
			t.Fatalf("Column(%q) = %v, want [%v]", name, col, v)
		}
	}
	if _, err := ts.Column("no-such-column"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestTableRaggedRowsRejected(t *testing.T) {
	tb := &Table{Title: "t", Headers: []string{"a", "b"}}
	tb.AddRow(1) // one cell for two headers
	if err := tb.WriteText(&strings.Builder{}); err == nil {
		t.Fatal("WriteText must reject ragged rows")
	}
	if err := tb.WriteCSV(&strings.Builder{}); err == nil {
		t.Fatal("WriteCSV must reject ragged rows")
	}
	if s := tb.String(); !strings.Contains(s, "invalid table") {
		t.Fatalf("String must surface the validation error, got %q", s)
	}
}

func TestTableStringAndCellFormatting(t *testing.T) {
	tb := &Table{Title: "fmt", Headers: []string{"f64", "f32", "str", "int"}}
	tb.AddRow(1.23456789, float32(2.5), "x", 42)
	s := tb.String()
	for _, want := range []string{"1.235", "2.5", "x", "42", "fmt"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	var csv strings.Builder
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "f64,f32,str,int\n") {
		t.Fatalf("CSV header wrong: %q", csv.String())
	}
}
