package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular result table for harness output: the rows
// of a paper table, or the series of a paper figure in long form.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers name the columns.
	Headers []string
	// Rows hold the cells, already formatted.
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v (floats get %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Validate reports ragged rows.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r) != len(t.Headers) {
			return fmt.Errorf("metrics: table %q row %d has %d cells, want %d", t.Title, i, len(r), len(t.Headers))
		}
	}
	return nil
}

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the text form, for convenient %v printing.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return fmt.Sprintf("metrics: invalid table: %v", err)
	}
	return b.String()
}
