// Package metrics provides the accounting and reporting layer of the
// GreenMatch simulator: the per-run energy-flow account whose conservation
// identity the integration tests assert, the SLA account for deadline
// tracking, per-slot time series for the figure experiments, and plain-text
// / CSV table rendering for the harness output.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// EnergyAccount accumulates every energy flow of a simulation run. All
// fields are cumulative watt-hours. The settlement identities are:
//
//	Consumption side: Demand + Overheads = GreenDirect + BatteryOut + Brown
//	Production side:  GreenProduced = GreenDirect + BatteryInAccepted + GreenLost
//
// plus the battery-internal identity asserted by the battery package.
type EnergyAccount struct {
	// Demand is the IT-load energy (servers + disks in their scheduled
	// states), excluding transition overheads.
	Demand units.Energy
	// MigrationOverhead is the energy charged for VM migrations caused by
	// consolidation.
	MigrationOverhead units.Energy
	// TransitionOverhead is the energy of disk spin transients, cold-read
	// wake-ups, and node boot/shutdown transients.
	TransitionOverhead units.Energy

	// GreenDirect is renewable energy consumed as it was produced.
	GreenDirect units.Energy
	// BatteryOut is energy delivered by the ESD.
	BatteryOut units.Energy
	// Brown is energy drawn from the grid.
	Brown units.Energy

	// GreenProduced is the total renewable production over the run.
	GreenProduced units.Energy
	// BatteryInAccepted is the surplus the ESD actually drew.
	BatteryInAccepted units.Energy
	// GreenLost is surplus production that neither the load nor the ESD
	// could take (battery full or charge-rate limited, or no battery).
	GreenLost units.Energy

	// BatteryEffLoss and BatterySelfLoss break down the ESD-internal
	// losses (charging efficiency, self-discharge).
	BatteryEffLoss  units.Energy
	BatterySelfLoss units.Energy
}

// TotalLoad returns demand plus all overheads — everything that had to be
// powered.
func (a EnergyAccount) TotalLoad() units.Energy {
	return a.Demand + a.MigrationOverhead + a.TransitionOverhead
}

// TotalSupplied returns the sum of the three supply paths.
func (a EnergyAccount) TotalSupplied() units.Energy {
	return a.GreenDirect + a.BatteryOut + a.Brown
}

// ConservationError returns the largest absolute discrepancy (Wh) across
// the two settlement identities. Integration tests require it to be within
// floating-point noise.
func (a EnergyAccount) ConservationError() float64 {
	cons := math.Abs((a.TotalLoad() - a.TotalSupplied()).Wh())
	prod := math.Abs((a.GreenProduced - (a.GreenDirect + a.BatteryInAccepted + a.GreenLost)).Wh())
	return math.Max(cons, prod)
}

// GreenUtilization returns the fraction of produced renewable energy that
// reached the load (directly or through the battery). Zero production
// reports zero.
func (a EnergyAccount) GreenUtilization() float64 {
	if a.GreenProduced == 0 {
		return 0
	}
	return (a.GreenDirect + a.BatteryOut).Wh() / a.GreenProduced.Wh()
}

// BrownFraction returns the fraction of the total load supplied by the grid.
func (a EnergyAccount) BrownFraction() float64 {
	if a.TotalSupplied() == 0 {
		return 0
	}
	return a.Brown.Wh() / a.TotalSupplied().Wh()
}

// TotalLosses returns everything dissipated or wasted: battery-internal
// losses plus surplus green energy lost plus scheduling overheads.
func (a EnergyAccount) TotalLosses() units.Energy {
	return a.BatteryEffLoss + a.BatterySelfLoss + a.GreenLost + a.MigrationOverhead + a.TransitionOverhead
}

// SLAAccount tracks job-level service quality.
type SLAAccount struct {
	// Submitted, Completed count jobs over the run.
	Submitted int
	Completed int
	// DeadlineMisses counts jobs finishing after their deadline (or never).
	DeadlineMisses int
	// TotalWaitSlots accumulates slots jobs spent waiting after submit
	// before first start.
	TotalWaitSlots int
	// MaxWaitSlots is the worst single-job wait.
	MaxWaitSlots int
	// Migrations counts VM migrations performed by consolidation.
	Migrations int
	// Suspensions counts batch-job suspensions.
	Suspensions int
	// ColdReads counts reads that had to wake a parked disk.
	ColdReads int
	// UnservedReads counts reads that found no powered replica.
	UnservedReads int
	// NodeFailures counts node crashes (failure injection).
	NodeFailures int
	// Evictions counts running jobs displaced by node crashes.
	Evictions int
	// RepairJobsGenerated counts re-replication jobs synthesized after
	// crashes.
	RepairJobsGenerated int
	// OverloadEvents counts slots in which a node's actual (utilization-
	// modeled) CPU demand exceeded its physical capacity.
	OverloadEvents int
	// OverloadMigrations counts forced migrations performed to relieve
	// overloaded nodes (also included in Migrations).
	OverloadMigrations int
	// ThrottledSlots counts node-slots left overloaded because no other
	// node had room (performance degradation the over-commit risked).
	ThrottledSlots int
}

// Sub returns the fieldwise difference s - prev: the per-interval deltas
// between two snapshots of a cumulative account. The observability layer
// uses it to turn end-of-slot snapshots into per-slot event counts.
func (s SLAAccount) Sub(prev SLAAccount) SLAAccount {
	return SLAAccount{
		Submitted:           s.Submitted - prev.Submitted,
		Completed:           s.Completed - prev.Completed,
		DeadlineMisses:      s.DeadlineMisses - prev.DeadlineMisses,
		TotalWaitSlots:      s.TotalWaitSlots - prev.TotalWaitSlots,
		MaxWaitSlots:        s.MaxWaitSlots - prev.MaxWaitSlots,
		Migrations:          s.Migrations - prev.Migrations,
		Suspensions:         s.Suspensions - prev.Suspensions,
		ColdReads:           s.ColdReads - prev.ColdReads,
		UnservedReads:       s.UnservedReads - prev.UnservedReads,
		NodeFailures:        s.NodeFailures - prev.NodeFailures,
		Evictions:           s.Evictions - prev.Evictions,
		RepairJobsGenerated: s.RepairJobsGenerated - prev.RepairJobsGenerated,
		OverloadEvents:      s.OverloadEvents - prev.OverloadEvents,
		OverloadMigrations:  s.OverloadMigrations - prev.OverloadMigrations,
		ThrottledSlots:      s.ThrottledSlots - prev.ThrottledSlots,
	}
}

// MeanWaitSlots returns the average pre-start wait per completed job.
func (s SLAAccount) MeanWaitSlots() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TotalWaitSlots) / float64(s.Completed)
}

// MissRate returns the fraction of submitted jobs that missed deadlines.
func (s SLAAccount) MissRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Submitted)
}

// DegradeAccount tracks how a run behaved while fault injection impaired
// it. A degradation episode starts when faults become active (crashed nodes
// or a scheduled fault-event window) and ends when the backlog has drained
// back to its pre-episode level.
type DegradeAccount struct {
	// DegradedSlots counts slots with faults active: crashed nodes awaiting
	// repair, or any scheduled fault-event window covering the slot.
	DegradedSlots int
	// CoverageLossSlots counts degraded slots that ended with at least one
	// object having no replica on a spinning disk of a powered node.
	CoverageLossSlots int
	// BacklogPeak is the largest waiting-job backlog observed during
	// degraded or recovering slots (zero when no fault ever fired).
	BacklogPeak int
	// RecoverySlots counts post-fault slots until the backlog drained back
	// to its pre-episode level: the recovery time, summed over episodes.
	RecoverySlots int
}

// Degraded reports whether any fault ever impaired the run.
func (d DegradeAccount) Degraded() bool { return d.DegradedSlots > 0 }

// SlotSample is one row of the per-slot time series.
type SlotSample struct {
	Slot        int
	DemandW     float64 // total load power (incl. overhead energy smeared over the slot)
	GreenW      float64 // renewable production
	GreenUsedW  float64 // green consumed directly
	BatteryOutW float64
	BatteryInW  float64 // surplus accepted by the ESD
	BrownW      float64
	GreenLostW  float64 // surplus neither consumed nor stored
	BatterySoC  float64 // state of charge 0..1 after the slot
	NodesOn     int
	DisksSpun   int
	JobsRunning int
	JobsWaiting int
}

// TimeSeries records one sample per slot.
type TimeSeries struct {
	Samples []SlotSample
}

// Add appends a sample; slots must arrive in order.
func (ts *TimeSeries) Add(s SlotSample) {
	if len(ts.Samples) > 0 && s.Slot <= ts.Samples[len(ts.Samples)-1].Slot {
		panic(fmt.Sprintf("metrics: out-of-order slot %d", s.Slot))
	}
	ts.Samples = append(ts.Samples, s)
}

// Column extracts a named column; recognised names are the SlotSample
// field semantics: "demand", "green", "green_used", "battery_out", "brown",
// "soc", "nodes_on", "disks_spun", "jobs_running", "jobs_waiting".
func (ts *TimeSeries) Column(name string) ([]float64, error) {
	out := make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		switch name {
		case "demand":
			out[i] = s.DemandW
		case "green":
			out[i] = s.GreenW
		case "green_used":
			out[i] = s.GreenUsedW
		case "battery_out":
			out[i] = s.BatteryOutW
		case "battery_in":
			out[i] = s.BatteryInW
		case "green_lost":
			out[i] = s.GreenLostW
		case "brown":
			out[i] = s.BrownW
		case "soc":
			out[i] = s.BatterySoC
		case "nodes_on":
			out[i] = float64(s.NodesOn)
		case "disks_spun":
			out[i] = float64(s.DisksSpun)
		case "jobs_running":
			out[i] = float64(s.JobsRunning)
		case "jobs_waiting":
			out[i] = float64(s.JobsWaiting)
		default:
			return nil, fmt.Errorf("metrics: unknown column %q", name)
		}
	}
	return out, nil
}
