package metrics

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

func balancedAccount() EnergyAccount {
	return EnergyAccount{
		Demand:             10000,
		MigrationOverhead:  100,
		TransitionOverhead: 50,
		GreenDirect:        4000,
		BatteryOut:         2000,
		Brown:              4150,
		GreenProduced:      7000,
		BatteryInAccepted:  2500,
		GreenLost:          500,
		BatteryEffLoss:     375,
		BatterySelfLoss:    25,
	}
}

func TestConservationOnBalancedAccount(t *testing.T) {
	a := balancedAccount()
	if err := a.ConservationError(); err > 1e-9 {
		t.Fatalf("balanced account reports conservation error %v", err)
	}
}

func TestConservationDetectsImbalance(t *testing.T) {
	a := balancedAccount()
	a.Brown -= 100
	if a.ConservationError() < 99 {
		t.Fatal("conservation check missed a 100 Wh hole")
	}
	b := balancedAccount()
	b.GreenLost += 77
	if b.ConservationError() < 76 {
		t.Fatal("conservation check missed a production-side hole")
	}
}

func TestDerivedRatios(t *testing.T) {
	a := balancedAccount()
	if got := a.TotalLoad(); got != 10150 {
		t.Errorf("TotalLoad %v", got)
	}
	if got := a.TotalSupplied(); got != 10150 {
		t.Errorf("TotalSupplied %v", got)
	}
	wantGU := float64(4000+2000) / 7000
	if got := a.GreenUtilization(); got != wantGU {
		t.Errorf("GreenUtilization %v, want %v", got, wantGU)
	}
	wantBF := 4150.0 / 10150
	if got := a.BrownFraction(); got != wantBF {
		t.Errorf("BrownFraction %v, want %v", got, wantBF)
	}
	if got := a.TotalLosses(); got != units.Energy(375+25+500+100+50) {
		t.Errorf("TotalLosses %v", got)
	}
}

func TestZeroDivisionGuards(t *testing.T) {
	var a EnergyAccount
	if a.GreenUtilization() != 0 || a.BrownFraction() != 0 {
		t.Error("empty account ratios should be zero")
	}
}

func TestSLAAccount(t *testing.T) {
	s := SLAAccount{Submitted: 100, Completed: 80, DeadlineMisses: 5, TotalWaitSlots: 160}
	if s.MeanWaitSlots() != 2 {
		t.Errorf("mean wait %v", s.MeanWaitSlots())
	}
	if s.MissRate() != 0.05 {
		t.Errorf("miss rate %v", s.MissRate())
	}
	var zero SLAAccount
	if zero.MeanWaitSlots() != 0 || zero.MissRate() != 0 {
		t.Error("zero SLA account should report zero rates")
	}
}

func TestTimeSeriesOrderEnforced(t *testing.T) {
	var ts TimeSeries
	ts.Add(SlotSample{Slot: 0})
	ts.Add(SlotSample{Slot: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order slot did not panic")
		}
	}()
	ts.Add(SlotSample{Slot: 1})
}

func TestTimeSeriesColumns(t *testing.T) {
	var ts TimeSeries
	ts.Add(SlotSample{Slot: 0, DemandW: 100, GreenW: 50, BrownW: 60, BatterySoC: 0.5, NodesOn: 3, JobsRunning: 7})
	ts.Add(SlotSample{Slot: 1, DemandW: 200, GreenW: 70, BrownW: 10, BatterySoC: 0.6, NodesOn: 4, JobsRunning: 9})
	for name, want := range map[string][]float64{
		"demand":       {100, 200},
		"green":        {50, 70},
		"brown":        {60, 10},
		"soc":          {0.5, 0.6},
		"nodes_on":     {3, 4},
		"jobs_running": {7, 9},
	} {
		got, err := ts.Column(name)
		if err != nil {
			t.Fatalf("Column(%q): %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Column(%q) = %v, want %v", name, got, want)
			}
		}
	}
	if _, err := ts.Column("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestTableText(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "long-header", "c"}}
	tb.AddRow("x", 1.23456, 42)
	tb.AddRow("yyyyy", "z", 3.0)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "1.235") {
		t.Fatalf("text table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestTableRaggedRejected(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.Rows = append(tb.Rows, []string{"only-one"})
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err == nil {
		t.Error("ragged table should fail")
	}
	if err := tb.WriteCSV(&buf); err == nil {
		t.Error("ragged CSV should fail")
	}
	if !strings.Contains(tb.String(), "invalid table") {
		t.Error("String should surface the error")
	}
}
