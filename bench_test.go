package greenmatch

// The benchmark harness regenerates every figure and table of the
// reconstructed evaluation (DESIGN.md §3): one Benchmark per experiment ID.
// Each iteration executes the full experiment at bench scale and reports
// the headline quantity as a custom metric, so `go test -bench=.` both
// times the harness and emits the numbers EXPERIMENTS.md records.
//
// Micro-benchmarks for the hot substrates (battery settlement, FFD
// placement, set cover, matching, solar generation, end-to-end simulator
// throughput) follow the experiment benches.

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/battery"
	"repro/internal/expt"
	"repro/internal/match"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/solar"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
	"repro/scenarios"
)

// benchParams is the scale experiments run at under the bench harness:
// large enough to preserve every qualitative shape (the expt test suite
// asserts them at 0.2), small enough that the full `-bench=.` sweep
// completes in minutes. Workers is left at the zero value, so each
// experiment's grid sweep fans out across every core — the same default
// `gmexp -all` runs with.
func benchParams() ExperimentParams { return ExperimentParams{Scale: 0.2} }

// runExperiment executes one registry entry per iteration and attaches the
// first numeric cell of the last row of the last table as a custom metric,
// so regressions in the *result*, not only the runtime, are visible. The
// registry lookup runs before the timer starts and the table post-
// processing after it stops, so the reported ns/op covers e.Run alone;
// ReportAllocs makes allocation regressions in the experiment pipeline
// visible alongside the timing.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	params := benchParams()
	var tables []*metrics.Table
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err = e.Run(params)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(tables) > 0 {
		last := tables[len(tables)-1]
		if len(last.Rows) > 0 {
			row := last.Rows[len(last.Rows)-1]
			for _, cell := range row {
				if v, err := strconv.ParseFloat(cell, 64); err == nil {
					b.ReportMetric(v, "result")
					break
				}
			}
		}
	}
}

func BenchmarkE1SupplyDemand(b *testing.B)       { runExperiment(b, "E1") }
func BenchmarkE2PanelSweep(b *testing.B)         { runExperiment(b, "E2") }
func BenchmarkE3BatterySweepIdeal(b *testing.B)  { runExperiment(b, "E3") }
func BenchmarkE4DeferFractions(b *testing.B)     { runExperiment(b, "E4") }
func BenchmarkE5SolarLoss(b *testing.B)          { runExperiment(b, "E5") }
func BenchmarkE6LossDecomposition(b *testing.B)  { runExperiment(b, "E6") }
func BenchmarkE7Chemistry(b *testing.B)          { runExperiment(b, "E7") }
func BenchmarkE8PolicyTable(b *testing.B)        { runExperiment(b, "E8") }
func BenchmarkE9MatchScaling(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkE10ForecastAblation(b *testing.B)  { runExperiment(b, "E10") }
func BenchmarkE11Coverage(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12WindHybrid(b *testing.B)        { runExperiment(b, "E12") }
func BenchmarkE13MixedOptimum(b *testing.B)      { runExperiment(b, "E13") }
func BenchmarkE14FailureResilience(b *testing.B) { runExperiment(b, "E14") }
func BenchmarkE15ServiceQuality(b *testing.B)    { runExperiment(b, "E15") }
func BenchmarkE16CarbonFootprint(b *testing.B)   { runExperiment(b, "E16") }
func BenchmarkE17DVFSAblation(b *testing.B)      { runExperiment(b, "E17") }
func BenchmarkE18Seasonal(b *testing.B)          { runExperiment(b, "E18") }
func BenchmarkE19BatteryAware(b *testing.B)      { runExperiment(b, "E19") }
func BenchmarkE20OvercommitSweep(b *testing.B)   { runExperiment(b, "E20") }
func BenchmarkE21TieredStorage(b *testing.B)     { runExperiment(b, "E21") }
func BenchmarkE22Arena(b *testing.B)             { runExperiment(b, "E22") }

// BenchmarkOracleRatio times the offline-optimal oracle solve on every
// shipped scenario at bench scale and reports each scenario's GreenMatch
// competitive ratio as the `result` metric, extending the gmbench
// RESULT METRIC DRIFT gate to per-scenario ratios: a simulator change that
// silently worsens (or "improves") brown energy relative to the offline
// optimum shows up here scenario by scenario.
func BenchmarkOracleRatio(b *testing.B) {
	for _, name := range scenarios.Names() {
		b.Run(name, func(b *testing.B) {
			raw, err := scenarios.Bytes(name)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := scenario.Read(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := sc.Scaled(benchParams().Scale).Compile()
			if err != nil {
				b.Fatal(err)
			}
			cfg.Policy = GreenMatch{}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var rep OracleReport
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = SolveOracle(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if ratio, ok := rep.Ratio(res.Energy.Brown); ok {
				b.ReportMetric(ratio, "result")
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkBatterySlotCycle(b *testing.B) {
	bat := battery.MustNew(battery.MustSpec(battery.LithiumIon), 100*units.KilowattHour)
	cycle := func() {
		bat.Charge(5*units.KilowattHour, 1)
		bat.Discharge(4*units.KilowattHour, 1)
		bat.TickSelfDischarge(1)
	}
	// Warm to the fixed point: the net-positive cycle fills the battery over
	// its first ~150 iterations, so without warmup the measured work (and
	// the stored-energy fixed point the result metric reports) would depend
	// on -benchtime. At the fixed point every iteration does identical work
	// and the metric is iteration-count-invariant.
	prev := bat.Stored()
	for i := 0; i < 10000; i++ {
		cycle()
		if units.ApproxEqual(bat.Stored(), prev, 1e-9) {
			break
		}
		prev = bat.Stored()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.StopTimer()
	b.ReportMetric(bat.Stored().Wh(), "result")
}

func BenchmarkSolarGenerateWeek(b *testing.B) {
	cfg := solar.DefaultFarm(165.6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solar.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerateWeek(b *testing.B) {
	cfg := workload.DefaultGen()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFDPlace200Jobs(b *testing.B) {
	s := rng.New(1, "bench-ffd")
	items := make([]sched.PlaceItem, 200)
	for i := range items {
		items[i] = sched.PlaceItem{ID: i, CPU: s.Uniform(0.5, 2), RAM: s.Uniform(1, 4), Pinned: -1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.FFD(items, 30, 12, 32, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalCover(b *testing.B) {
	cl := storage.MustNewCluster(storage.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cl.MinimalCover()) == 0 {
			b.Fatal("empty cover")
		}
	}
}

func benchInstance(n, m int) match.Instance {
	s := rng.New(2, "bench-match")
	in := match.Instance{Weights: make([][]float64, n), Capacity: make([]int, m)}
	for k := range in.Capacity {
		in.Capacity[k] = n/m + 1
	}
	for j := 0; j < n; j++ {
		row := make([]float64, m)
		latest := s.Intn(m)
		for k := range row {
			if k > latest {
				row[k] = match.Forbidden
			} else {
				row[k] = s.Uniform(0, 1)
			}
		}
		in.Weights[j] = row
	}
	return in
}

func BenchmarkMatchFlow100x24(b *testing.B) {
	in := benchInstance(100, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.Flow(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchHungarian100x24(b *testing.B) {
	in := benchInstance(100, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.Hungarian(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchGreedy100x24(b *testing.B) {
	in := benchInstance(100, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.Greedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- incremental matching (match.Solver) micro-benchmarks ---

// benchGrouped builds a grouped transportation instance shaped like the
// ones GreenMatch.Plan emits: g job classes over 24 deadline slots, each
// class restricted to slots up to its deadline (a prefix of non-forbidden
// cells), greenness weights in [0, 1).
func benchGrouped(g int, seed int64) (weights [][]float64, supply, capacity []int) {
	const m = 24
	s := rng.New(seed, "bench-match-plan")
	weights = make([][]float64, g)
	supply = make([]int, g)
	for gi := range weights {
		row := make([]float64, m)
		latest := 4 + s.Intn(m-4)
		for k := range row {
			if k > latest {
				row[k] = match.Forbidden
			} else {
				row[k] = s.Uniform(0, 1)
			}
		}
		weights[gi] = row
		supply[gi] = 1 + s.Intn(4)
	}
	capacity = make([]int, m)
	for k := range capacity {
		capacity[k] = 2*g/m + 2
	}
	return weights, supply, capacity
}

// BenchmarkMatchPlan measures the reusable match.Solver across its three
// tiers at several job-class counts:
//
//   - cold: alternating instances with different forbidden patterns, so
//     every solve rebuilds the graph (into reused memory);
//   - repair: alternating weight values over one fixed topology, so every
//     solve overwrites arcs in place and re-runs SSP;
//   - memo: the same instance every time, answered from the cached result.
//
// All three are allocation-free once warm; the tier counters are asserted
// so the benchmark fails loudly if a tier stops being exercised.
func BenchmarkMatchPlan(b *testing.B) {
	for _, g := range []int{8, 32, 96} {
		wA, sA, cA := benchGrouped(g, 3)
		wB, sB, cB := benchGrouped(g, 4) // different forbidden pattern: topology change
		// Same topology as A, different weight values: arc-repair tier.
		wR := make([][]float64, g)
		for gi, row := range wA {
			r := make([]float64, len(row))
			for k, w := range row {
				if match.IsForbidden(w) {
					r[k] = w
				} else {
					r[k] = 1 - w/2
				}
			}
			wR[gi] = r
		}
		tiers := []struct {
			name string
			run  func(sv *match.Solver, i int) error
			pick func(st match.SolverStats) int
		}{
			{"cold", func(sv *match.Solver, i int) error {
				var err error
				if i%2 == 0 {
					_, err = sv.SolveGrouped(wA, sA, cA)
				} else {
					_, err = sv.SolveGrouped(wB, sB, cB)
				}
				return err
			}, func(st match.SolverStats) int { return st.ColdSolves }},
			{"repair", func(sv *match.Solver, i int) error {
				var err error
				if i%2 == 0 {
					_, err = sv.SolveGrouped(wA, sA, cA)
				} else {
					_, err = sv.SolveGrouped(wR, sA, cA)
				}
				return err
			}, func(st match.SolverStats) int { return st.ArcRepairs }},
			{"memo", func(sv *match.Solver, i int) error {
				_, err := sv.SolveGrouped(wA, sA, cA)
				return err
			}, func(st match.SolverStats) int { return st.MemoHits }},
		}
		for _, tier := range tiers {
			b.Run(fmt.Sprintf("g%d/%s", g, tier.name), func(b *testing.B) {
				var sv match.Solver
				for i := 0; i < 4; i++ { // warm both instances past the first allocation
					if err := tier.run(&sv, i); err != nil {
						b.Fatal(err)
					}
				}
				before := tier.pick(sv.Stats())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := tier.run(&sv, i); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				hit := tier.pick(sv.Stats()) - before
				if hit < b.N/2 {
					b.Fatalf("tier %s took only %d of %d solves", tier.name, hit, b.N)
				}
				b.ReportMetric(float64(hit)/float64(b.N), "tier-hits/op")
			})
		}
	}
}

// benchCfg builds the shared 20%-scale scenario the throughput benches
// run. Built once per benchmark, outside the timed region: trace and solar
// generation would otherwise dominate the measurement, and the Run
// contract guarantees a Config may be shared across (even concurrent)
// Runs unmutated.
func benchCfg() Config {
	cfg := DefaultConfig()
	cl := cfg.Cluster
	cl.Nodes = 6
	cl.Objects = 600
	cfg.Cluster = cl
	cfg.Trace = workload.MustGenerate(workload.Scaled(0.2))
	cfg.Green = DefaultGreen(33)
	cfg.ReadsPerSlot = 40
	cfg.Policy = GreenMatch{}
	return cfg
}

// BenchmarkSimulatorSlotThroughput measures end-to-end simulated slots per
// second for the GreenMatch policy at 20% scale.
func BenchmarkSimulatorSlotThroughput(b *testing.B) {
	cfg := benchCfg()
	slots := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		slots += res.Slots
	}
	b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
}

// BenchmarkLiveDecisionThroughput measures the steady-state decision rate
// of the steppable live scheduler — the core cmd/gmserve drives — stepping
// slot by slot the way the daemon's tick path does instead of through the
// batch loop. decisions/s is the service's headline capacity number; the
// per-run decision count is deterministic and doubles as the `result`
// metric, so the gmbench drift gate pins the decision stream itself, not
// just its speed.
func BenchmarkLiveDecisionThroughput(b *testing.B) {
	cfg := benchCfg()
	decisions, perRun := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := NewLiveScheduler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for !l.Drained() {
			if err := l.StepTo(l.NextSlot()); err != nil { // exactly one slot, like a tick
				b.Fatal(err)
			}
		}
		if _, err := l.Finalize(); err != nil {
			b.Fatal(err)
		}
		decisions += l.NextSlot()
		perRun = l.NextSlot()
	}
	b.StopTimer()
	b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(perRun), "result")
}

// sparseBenchCfg builds the event-driven fast path's home turf: an ~8000
// slot horizon over the full-size reference cluster where short, tight-
// deadline batch bursts arrive every 100 slots and run immediately, so the
// cluster is quiescent in between. The solar series is generated for the
// full horizon so supply stays non-degenerate throughout. Per-quiet-slot
// cost of the full pipeline grows with cluster size (power planning, draw
// summation, placement all scan nodes and disks) while the fast kernel's
// does not, so this measures the fast path at the scale it targets.
func sparseBenchCfg() Config {
	const (
		horizon = 40000
		gap     = 200
	)
	cfg := DefaultConfig()
	cl := cfg.Cluster
	cl.Objects = 300 // full fleet, slim catalog: keeps one-time cluster construction from dominating the 40k-slot loop
	cfg.Cluster = cl
	var trace []workload.Job
	id := 0
	for submit := 0; submit+gap/2 < horizon; submit += gap {
		for j := 0; j < 4; j++ {
			d := 2 + j
			trace = append(trace, workload.Job{
				ID: id, Class: workload.Batch, Submit: submit,
				Duration: d, Deadline: submit + d, CPU: 1, RAMGB: 2,
			})
			id++
		}
	}
	cfg.Trace = trace
	farm := solar.DefaultFarm(165.6)
	farm.Slots = horizon
	cfg.Green = solar.MustGenerate(farm)
	cfg.ReadsPerSlot = 0.1 // cold archive: most slots see no reads at all
	cfg.Policy = GreenMatch{}
	return cfg
}

// BenchmarkSimulatorSlotThroughputSparse measures end-to-end slots per
// second on the sparse-arrival scenario, with the event-driven slot
// skipping on (the default) and forced off. The slots/s ratio between the
// two sub-benchmarks is the fast path's speedup on its target shape.
func BenchmarkSimulatorSlotThroughputSparse(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSkip bool
	}{{"skip", false}, {"noskip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := sparseBenchCfg()
			cfg.DisableSlotSkipping = mode.noSkip
			slots := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				slots += res.Slots
			}
			b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
		})
	}
}

// BenchmarkSweepThroughput measures experiment-sweep throughput (full
// simulation runs per second) through the parallel runner, at one worker
// (the historical sequential path) versus one worker per core. On a
// multi-core machine the j=GOMAXPROCS case should approach a linear
// multiple of j=1; on a single-core machine the two converge.
func BenchmarkSweepThroughput(b *testing.B) {
	cfg := benchCfg()
	const points = 8
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			jobs := make([]SweepJob, points)
			for k := range jobs {
				jobs[k] = SweepJob{
					Label: fmt.Sprintf("point-%d", k),
					Run:   func() (any, error) { return Run(cfg) },
				}
			}
			runs := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := SweepErrs(Sweep(jobs, SweepOptions{Workers: workers})); err != nil {
					b.Fatal(err)
				}
				runs += points
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
