// Archive tier: a cold-storage scenario dominated by deferrable maintenance
// I/O (scrubbing, backups, replica repair) on archive-class disks with a
// weak interactive load. This is the regime GreenMatch's title targets —
// massive storage where almost all work is time-shiftable and most energy
// sits in spindles, so the combination of deferral and coverage-constrained
// spin-down pays the most.
//
// Run with: go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"os"

	greenmatch "repro"
	"repro/internal/power"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// Maintenance-heavy workload: few web VMs, a modest batch load, and a
	// large scrub/backup/repair population with long deadlines.
	gen := workload.DefaultGen()
	gen.WebJobs = 40
	gen.BatchJobs = 200
	gen.ScrubJobs = 600
	gen.BackupJobs = 300
	gen.RepairJobs = 100
	gen.Seed = 1
	trace, err := workload.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}

	table := &greenmatch.Table{
		Title: "Archive store — 3 hot + 7 cold tiered nodes, 50 m2 PV, no battery",
		Headers: []string{"policy", "brown_kwh", "green_util_%", "disk_spun_hours",
			"spindowns", "cold_reads", "misses"},
	}
	for _, policy := range []greenmatch.Policy{
		greenmatch.Baseline{},
		greenmatch.SpinDown{},
		greenmatch.GreenMatch{},
	} {
		cfg := greenmatch.DefaultConfig()
		cl := cfg.Cluster
		cl.Objects = 5000 // dense archival placement
		// Tiered layout: a small hot tier of enterprise spindles holds the
		// 15% hottest objects; archive-class disks hold the cold bulk.
		cl.Tiers = []storage.Tier{
			{Name: "hot", Nodes: 3, Server: power.R720(), Disk: power.EnterpriseHDD(), ObjectShare: 0.15},
			{Name: "cold", Nodes: 7, Server: power.R720(), Disk: power.ArchiveHDD(), ObjectShare: 0.85},
		}
		cfg.Cluster = cl
		cfg.Trace = trace
		cfg.Green = greenmatch.DefaultGreen(50)
		cfg.ReadsPerSlot = 30 // cold tier: sparse reads, Zipf-skewed
		cfg.ZipfTheta = 1.1
		cfg.Policy = policy

		res, err := greenmatch.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(res.Policy,
			res.Energy.Brown.KWh(),
			100*res.Energy.GreenUtilization(),
			res.DiskSpunHours,
			res.Disk.SpinDowns,
			res.SLA.ColdReads,
			res.SLA.DeadlineMisses)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOn a cold tier the coverage set is what keeps disks spinning; GreenMatch")
	fmt.Println("additionally times the scrub/backup waves to the solar window.")
}
