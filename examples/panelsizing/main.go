// Panel sizing: sweep PV area under an ideal (infinite) ESD to find the
// break-even dimension at which the workload needs no brown energy in
// steady state — the live version of experiment E2.
//
// Run with: go run ./examples/panelsizing
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	greenmatch "repro"
)

func main() {
	table := &greenmatch.Table{
		Title:   "Brown energy vs PV area — infinite ideal ESD, baseline policy, 8 nodes",
		Headers: []string{"area_m2", "produced_kwh", "supply_ratio", "steady_brown_kwh"},
	}
	breakEven := -1.0
	for _, area := range []float64{0, 10, 20, 30, 40, 50, 60, 80, 100} {
		cfg := greenmatch.DefaultConfig()
		cl := cfg.Cluster
		cl.Nodes = 8
		cl.Objects = 800
		cfg.Cluster = cl
		trace, err := greenmatch.GenerateWorkload(0.25, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Trace = trace
		cfg.Green = greenmatch.DefaultGreen(area)
		cfg.InfiniteBattery = true
		cfg.ReadsPerSlot = 50
		cfg.RecordSeries = true

		res, err := greenmatch.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var steady float64
		for _, s := range res.Series.Samples {
			if s.Slot >= 24 {
				steady += s.BrownW / 1000
			}
		}
		ratio := res.Energy.GreenProduced.Wh() / res.Energy.TotalLoad().Wh()
		table.AddRow(area, res.Energy.GreenProduced.KWh(), ratio, steady)
		if breakEven < 0 && steady < 1 {
			breakEven = area
		}
	}
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if breakEven >= 0 {
		side := math.Sqrt(breakEven)
		fmt.Printf("\nBreak-even panel dimension: ~%.0f m^2 (%.1f x %.1f m): beyond this,\n", breakEven, side, side)
		fmt.Println("an ideal ESD can time-shift the surplus to cover every night.")
	} else {
		fmt.Println("\nNo break-even in this sweep; widen the area grid.")
	}
}
