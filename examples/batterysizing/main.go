// Battery sizing: sweep ESD capacity under sized solar panels and find the
// smallest battery at which each policy stops drawing brown energy in
// steady state — the live version of experiment E3, including the volume
// and price the chemistry implies at that size.
//
// Run with: go run ./examples/batterysizing
package main

import (
	"fmt"
	"log"
	"os"

	greenmatch "repro"
)

func main() {
	capacitiesKWh := []float64{0, 5, 10, 15, 20, 25, 30, 40}

	table := &greenmatch.Table{
		Title:   "Steady-state brown energy (kWh) vs battery size — sized panels (62.5 m2), 8 nodes",
		Headers: []string{"battery_kwh", "baseline", "greenmatch"},
	}
	zero := map[string]float64{"baseline": -1, "greenmatch": -1}

	for _, capKWh := range capacitiesKWh {
		row := []any{capKWh}
		for _, policy := range []greenmatch.Policy{greenmatch.Baseline{}, greenmatch.GreenMatch{}} {
			cfg := greenmatch.DefaultConfig()
			cl := cfg.Cluster
			cl.Nodes = 8
			cl.Objects = 800
			cfg.Cluster = cl
			trace, err := greenmatch.GenerateWorkload(0.25, 1)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Trace = trace
			cfg.Green = greenmatch.DefaultGreen(62.5) // comfortably above break-even
			cfg.BatteryCapacityWh = greenmatch.Energy(capKWh * 1000)
			cfg.ReadsPerSlot = 50
			cfg.Policy = policy
			cfg.RecordSeries = true

			res, err := greenmatch.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			// Steady-state brown: skip the first day (the battery starts
			// empty, so the first pre-dawn hours are unavoidably brown).
			var steady float64
			for _, s := range res.Series.Samples {
				if s.Slot >= 24 {
					steady += s.BrownW / 1000
				}
			}
			row = append(row, steady)
			if zero[res.Policy] < 0 && steady < 1 {
				zero[res.Policy] = capKWh
			}
		}
		table.AddRow(row...)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	li, err := greenmatch.BatterySpecFor(greenmatch.LithiumIon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, name := range []string{"baseline", "greenmatch"} {
		k := zero[name]
		if k < 0 {
			fmt.Printf("%-11s never reaches zero brown in this sweep\n", name)
			continue
		}
		capWh := greenmatch.Energy(k * 1000)
		fmt.Printf("%-11s reaches zero steady-state brown at %4.0f kWh  (LI: %.0f L, $%.0f)\n",
			name, k, li.VolumeLiters(capWh), li.PriceDollars(capWh))
	}
	fmt.Println("\nGreenMatch needs the smaller battery: deferred jobs consume solar directly")
	fmt.Println("instead of round-tripping it through the ESD's charging losses.")
}
