package main

import (
	"strings"
	"testing"
)

func TestWindfarm(t *testing.T) {
	if testing.Short() {
		t.Skip("12 full simulations in -short mode")
	}
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Renewable source comparison",
		"solar", "wind", "hybrid",
		"baseline_brown_kwh", "greenmatch_brown_kwh",
		"equal weekly energy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Three sources × two battery sizes → six data rows.
	if n := strings.Count(out, "solar"); n < 2 {
		t.Errorf("expected solar rows in table, got %d mention(s):\n%s", n, out)
	}
}
