// Wind farm: the paper thread's flagged future work — does the
// scheduling-vs-storage trade-off survive a renewable source with a
// completely different production profile? Wind has no diurnal zero, long
// calm spells and gusty plateaus, so deferral windows are irregular.
//
// This example compares solar, wind and a 50/50 hybrid at equal weekly
// energy, under Baseline and GreenMatch, with and without a battery.
//
// Run with: go run ./examples/windfarm
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	greenmatch "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	const slots = 24 * 21

	solar, err := greenmatch.GenerateSolar(41.4, "sunny", slots, 1)
	if err != nil {
		return err
	}
	windRaw, err := greenmatch.GenerateWind(1, slots, 1)
	if err != nil {
		return err
	}
	// Scale the wind trace to the solar trace's total energy so the two
	// sources are compared fairly.
	wind := windRaw.Scale(solar.TotalEnergy(1).Wh() / windRaw.TotalEnergy(1).Wh())
	hybrid := make(greenmatch.SolarSeries, slots)
	for i := range hybrid {
		hybrid[i] = (solar.Power(i) + wind.Power(i)) / 2
	}

	trace, err := greenmatch.GenerateWorkload(0.25, 1)
	if err != nil {
		return err
	}

	table := &greenmatch.Table{
		Title:   "Renewable source comparison — equal weekly energy, 8 nodes, quarter-scale week",
		Headers: []string{"source", "battery_kwh", "baseline_brown_kwh", "greenmatch_brown_kwh", "gm_advantage_%"},
	}
	sources := []struct {
		name   string
		series greenmatch.SolarSeries
	}{{"solar", solar}, {"wind", wind}, {"hybrid", hybrid}}

	for _, src := range sources {
		for _, batKWh := range []float64{0, 20} {
			var browns []float64
			for _, policy := range []greenmatch.Policy{greenmatch.Baseline{}, greenmatch.GreenMatch{}} {
				cfg := greenmatch.DefaultConfig()
				cl := cfg.Cluster
				cl.Nodes = 8
				cl.Objects = 800
				cfg.Cluster = cl
				cfg.Trace = trace
				cfg.Green = src.series
				cfg.BatteryCapacityWh = greenmatch.Energy(batKWh * 1000)
				cfg.ReadsPerSlot = 50
				cfg.Policy = policy
				res, err := greenmatch.Run(cfg)
				if err != nil {
					return err
				}
				browns = append(browns, res.Energy.Brown.KWh())
			}
			adv := 0.0
			if browns[0] > 0 {
				adv = 100 * (browns[0] - browns[1]) / browns[0]
			}
			table.AddRow(src.name, batKWh, browns[0], browns[1], adv)
		}
	}
	if err := table.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nAt equal weekly energy, wind's round-the-clock production covers the night")
	fmt.Fprintln(w, "load directly, so absolute brown energy is far lower than under solar; the")
	fmt.Fprintln(w, "matcher still pays off by riding the gust plateaus the forecast exposes.")
	return nil
}
