// Policy comparison: run the full policy zoo on the same scenario and print
// the headline table (a small-scale live version of experiment E8).
//
// Run with: go run ./examples/policycompare
package main

import (
	"log"
	"os"

	greenmatch "repro"
)

func main() {
	policies := []greenmatch.Policy{
		greenmatch.Baseline{},
		greenmatch.SpinDown{},
		greenmatch.DeferFraction{Fraction: 0.5},
		greenmatch.DeferFraction{Fraction: 1.0},
		greenmatch.GreenMatch{Fraction: 0.5},
		greenmatch.GreenMatch{},
	}

	table := &greenmatch.Table{
		Title: "Policy comparison — 1 week, 8-node storage cluster, 41 m2 PV, 10 kWh LI battery",
		Headers: []string{"policy", "brown_kwh", "green_used_kwh", "green_util_%",
			"misses", "mean_wait", "migrations", "node_hours", "disk_spindowns"},
	}
	for _, policy := range policies {
		cfg := greenmatch.DefaultConfig()
		cl := cfg.Cluster
		cl.Nodes = 8
		cl.Objects = 800
		cfg.Cluster = cl
		trace, err := greenmatch.GenerateWorkload(0.25, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Trace = trace
		cfg.Green = greenmatch.DefaultGreen(41.4)
		cfg.BatteryCapacityWh = 10_000
		cfg.ReadsPerSlot = 50
		cfg.Policy = policy

		res, err := greenmatch.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := res.Energy
		table.AddRow(res.Policy,
			e.Brown.KWh(),
			(e.GreenDirect + e.BatteryOut).KWh(),
			100*e.GreenUtilization(),
			res.SLA.DeadlineMisses,
			res.SLA.MeanWaitSlots(),
			res.SLA.Migrations,
			res.NodeHours,
			res.Disk.SpinDowns)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
