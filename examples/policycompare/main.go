// Policy comparison: run the full policy zoo on the same scenario and print
// the headline table (a small-scale live version of experiment E8). The
// runs are independent, so they fan out across every core through the
// public sweep API; the table rows still come back in policy order.
//
// Run with: go run ./examples/policycompare
package main

import (
	"io"
	"log"
	"os"

	greenmatch "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	policies := []greenmatch.Policy{
		greenmatch.Baseline{},
		greenmatch.SpinDown{},
		greenmatch.DeferFraction{Fraction: 0.5},
		greenmatch.DeferFraction{Fraction: 1.0},
		greenmatch.GreenMatch{Fraction: 0.5},
		greenmatch.GreenMatch{},
	}

	// The scenario substrate is built once and shared read-only by every
	// concurrent run (the documented Config contract).
	trace, err := greenmatch.GenerateWorkload(0.25, 1)
	if err != nil {
		return err
	}
	green := greenmatch.DefaultGreen(41.4)

	jobs := make([]greenmatch.SweepJob, len(policies))
	for i, policy := range policies {
		jobs[i] = greenmatch.SweepJob{
			Label: policy.Name(),
			Run: func() (any, error) {
				cfg := greenmatch.DefaultConfig()
				cl := cfg.Cluster
				cl.Nodes = 8
				cl.Objects = 800
				cfg.Cluster = cl
				cfg.Trace = trace
				cfg.Green = green
				cfg.BatteryCapacityWh = 10_000
				cfg.ReadsPerSlot = 50
				cfg.Policy = policy
				return greenmatch.Run(cfg)
			},
		}
	}
	outs := greenmatch.Sweep(jobs, greenmatch.SweepOptions{})
	if err := greenmatch.SweepErrs(outs); err != nil {
		return err
	}

	table := &greenmatch.Table{
		Title: "Policy comparison — 1 week, 8-node storage cluster, 41 m2 PV, 10 kWh LI battery",
		Headers: []string{"policy", "brown_kwh", "green_used_kwh", "green_util_%",
			"misses", "mean_wait", "migrations", "node_hours", "disk_spindowns"},
	}
	for _, out := range outs {
		res := out.Value.(*greenmatch.Result)
		e := res.Energy
		table.AddRow(res.Policy,
			e.Brown.KWh(),
			(e.GreenDirect + e.BatteryOut).KWh(),
			100*e.GreenUtilization(),
			res.SLA.DeadlineMisses,
			res.SLA.MeanWaitSlots(),
			res.SLA.Migrations,
			res.NodeHours,
			res.Disk.SpinDowns)
	}
	return table.WriteText(w)
}
