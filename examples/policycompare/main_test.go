package main

import (
	"strings"
	"testing"
)

func TestPolicyCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep in -short mode")
	}
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Policy comparison",
		"policy", "brown_kwh", "green_util_%",
		"baseline", "spindown", "defer50%", "defer100%", "mixed50%", "greenmatch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Six policies → six data rows after the title and header lines.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 8 {
		t.Errorf("table too short (%d lines):\n%s", len(lines), out)
	}
}
