package main

import (
	"strings"
	"testing"
)

func TestQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation runs in -short mode")
	}
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"baseline", "greenmatch", "brown=", "util=", "misses=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "brown="); n != 2 {
		t.Errorf("want one result line per policy (2), got %d:\n%s", n, out)
	}
}
