// Quickstart: simulate one week of a renewable-powered storage data center
// under the Baseline and GreenMatch policies and compare their energy mix.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	greenmatch "repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A quarter-scale data center: ~8 nodes, ~1000 jobs over one week,
	// a 41 m^2 rooftop solar farm and a 10 kWh lithium-ion battery.
	trace, err := greenmatch.GenerateWorkload(0.25, 1)
	if err != nil {
		return err
	}
	mkConfig := func(policy greenmatch.Policy) greenmatch.Config {
		cfg := greenmatch.DefaultConfig()
		cl := cfg.Cluster
		cl.Nodes = 8
		cl.Objects = 800
		cfg.Cluster = cl
		cfg.Trace = trace
		cfg.Green = greenmatch.DefaultGreen(41.4)
		cfg.BatteryCapacityWh = 10_000
		cfg.ReadsPerSlot = 50
		cfg.Policy = policy
		return cfg
	}

	for _, policy := range []greenmatch.Policy{
		greenmatch.Baseline{},
		greenmatch.GreenMatch{},
	} {
		res, err := greenmatch.Run(mkConfig(policy))
		if err != nil {
			return err
		}
		e := res.Energy
		fmt.Fprintf(w, "%-12s brown=%-12v greenUsed=%-12v lost=%-12v util=%.1f%%  misses=%d migrations=%d\n",
			res.Policy, e.Brown, e.GreenDirect+e.BatteryOut, e.GreenLost,
			100*e.GreenUtilization(), res.SLA.DeadlineMisses, res.SLA.Migrations)
	}
	fmt.Fprintln(w, "\nGreenMatch consolidates jobs, parks disks under the replica-coverage")
	fmt.Fprintln(w, "constraint, and shifts deferrable work into the solar window: noticeably")
	fmt.Fprintln(w, "less brown energy, with every deadline still met.")
	return nil
}
