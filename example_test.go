package greenmatch_test

import (
	"fmt"
	"log"

	greenmatch "repro"
)

// Example runs a small renewable-powered storage data center under the
// GreenMatch policy and prints whether every job met its deadline.
func Example() {
	cfg := greenmatch.DefaultConfig()
	cl := cfg.Cluster
	cl.Nodes = 6
	cl.Objects = 300
	cfg.Cluster = cl

	trace, err := greenmatch.GenerateWorkload(0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Trace = trace
	cfg.Green = greenmatch.DefaultGreen(20)
	cfg.ReadsPerSlot = 20
	cfg.Policy = greenmatch.GreenMatch{}

	res, err := greenmatch.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d/%d jobs, %d deadline misses\n",
		res.SLA.Completed, res.SLA.Submitted, res.SLA.DeadlineMisses)
	// Output: completed 426/426 jobs, 0 deadline misses
}

// ExampleBatterySpecFor shows the published chemistry characteristics the
// ESD model is parameterized with.
func ExampleBatterySpecFor() {
	li, err := greenmatch.BatterySpecFor(greenmatch.LithiumIon)
	if err != nil {
		log.Fatal(err)
	}
	capWh := greenmatch.Energy(90_000) // the literature's 90 kWh example
	fmt.Printf("efficiency %.2f, volume %.0f L, price $%.0f\n",
		li.Efficiency, li.VolumeLiters(capWh), li.PriceDollars(capWh))
	// Output: efficiency 0.85, volume 600 L, price $47250
}

// ExampleGenerateSolar builds a week of synthetic PV production and reports
// its totals; the trace is deterministic under the seed.
func ExampleGenerateSolar() {
	series, err := greenmatch.GenerateSolar(165.6, "sunny", 168, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slots=%d night(02:00)=%v peak>10kW=%v\n",
		series.Slots(), series.Power(2), series.Peak() > 10_000)
	// Output: slots=168 night(02:00)=0.0 W peak>10kW=true
}

// ExampleExperiments lists the first entries of the evaluation registry the
// benchmark harness drives.
func ExampleExperiments() {
	for _, e := range greenmatch.Experiments()[:3] {
		fmt.Printf("%s (%s)\n", e.ID, e.Kind)
	}
	// Output:
	// E1 (figure)
	// E2 (figure)
	// E3 (figure)
}
