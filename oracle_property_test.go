package greenmatch

// Oracle property suite: the offline-optimal oracle (internal/oracle) must
// be a true lower bound. For every shipped scenario and for randomized
// chaos fault schedules, every arena policy's simulated brown energy must
// be at least the oracle's bound — a competitive ratio below 1 means the
// "optimal" isn't. The suite also keeps the oracle cheap: solving the
// whole-horizon flow may not cost more than ten simulated runs, or the
// arena experiment stops being a free add-on to a sweep.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/oracle"
	"repro/internal/scenario"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
)

// boundTolWh absorbs float formatting noise in the comparison; the bound
// itself is integer watt-hours rounded conservatively, so any violation
// beyond this is a real soundness bug.
const boundTolWh = 1e-6

// TestOracleBoundsScenarioPolicies checks oracle.Brown <= policy brown for
// every shipped scenario at golden scale, across the whole policy arena.
// In -short mode (the CI race pass) it covers the reference and
// failure-storm scenarios only.
func TestOracleBoundsScenarioPolicies(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario files found")
	}
	shortSet := map[string]bool{"reference": true, "failure-storm": true}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !shortSet[name] {
				t.Skip("scenario subset in -short mode")
			}
			t.Parallel()
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scenario.Read(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := sc.Scaled(goldenScale).Compile()
			if err != nil {
				t.Fatal(err)
			}
			oracleStart := time.Now()
			rep, err := oracle.Solve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			oracleDur := time.Since(oracleStart)

			var simDur time.Duration
			for _, pol := range expt.ArenaPolicies() {
				cfg.Policy = pol
				runStart := time.Now()
				res, err := core.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", pol.Name(), err)
				}
				if d := time.Since(runStart); d > simDur {
					simDur = d
				}
				if res.Energy.Brown.Wh() < rep.Brown.Wh()-boundTolWh {
					t.Errorf("%s: simulated brown %v below oracle bound %v — the oracle is not a lower bound",
						pol.Name(), res.Energy.Brown, rep.Brown)
				}
			}
			// The oracle must stay cheap relative to one simulated run. The
			// floor keeps sub-millisecond runs from turning scheduler jitter
			// into flakes.
			if floor := 100 * time.Millisecond; simDur < floor {
				simDur = floor
			}
			if oracleDur > 10*simDur {
				t.Errorf("oracle took %v, more than 10x the slowest simulated run (%v)", oracleDur, simDur)
			}
		})
	}
}

// TestOracleBoundsChaosSeeds checks the same bound under generated chaos
// fault schedules — supply dropouts and curtailment the oracle must meter
// identically to the simulator, crash processes that void its availability
// floor — with the arena policies cycling across seeds. 50 seeds in the
// full run, 10 in -short.
func TestOracleBoundsChaosSeeds(t *testing.T) {
	const seeds = 50
	n := seeds
	if testing.Short() {
		n = 10
	}
	pols := expt.ArenaPolicies()
	for i := 0; i < n; i++ {
		i := i
		seed := int64(7000 + i)
		pol := pols[i%len(pols)]
		t.Run(pol.Name()+"/"+string(rune('a'+i%26))+string(rune('a'+i/26)), func(t *testing.T) {
			t.Parallel()
			cfg := chaosArenaConfig(seed)
			rep, err := oracle.Solve(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Policy = pol
			res, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Energy.Brown.Wh() < rep.Brown.Wh()-boundTolWh {
				t.Errorf("seed %d policy %s: simulated brown %v below oracle bound %v",
					seed, pol.Name(), res.Energy.Brown, rep.Brown)
			}
		})
	}
}

// chaosArenaConfig is the chaos-storm substrate of the oracle property
// test: the skip-equivalence suite's small battery-equipped cluster with a
// fully random (but seed-deterministic) fault schedule.
func chaosArenaConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cl := storage.DefaultConfig()
	cl.Nodes = 8
	cl.Objects = 400
	cfg.Cluster = cl
	gen := workload.Scaled(0.08)
	gen.Seed = seed
	cfg.Trace = workload.MustGenerate(gen)
	cfg.Green = core.DefaultGreen(40)
	cfg.BatteryCapacityWh = 10 * units.KilowattHour
	cfg.ReadsPerSlot = 50
	cfg.Seed = seed
	cfg.Faults = fault.Generate(seed, fault.GenSpec{
		Slots:     200,
		Nodes:     cl.Nodes,
		AllowMTBF: true,
	})
	return cfg
}
