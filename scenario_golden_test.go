package greenmatch

// Golden regression tests over the shipped scenario files: every
// scenarios/*.json is scaled to a quarter, simulated with the conservation
// auditor attached, and its headline outcomes — brown energy, losses,
// deadline misses, unserved reads — are pinned against a committed golden.
// This catches behavioural drift that the unit suites are too narrow to
// see. After an intentional simulator change, regenerate with:
//
//	go test -run TestScenarioGolden -update ./...
//
// (UPDATE_GOLDEN=1 in the environment works too, matching the expt
// package's convention.)

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current results")

const goldenScale = 0.25

func TestScenarioGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs in -short mode")
	}
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario files found")
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := runScenarioSummary(t, file)
			path := filepath.Join("testdata", "scenarios", name+".golden")
			if *updateGolden || os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden updated: %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("scenario %s drifted from golden %s:\n--- want\n%s--- got\n%s",
					file, path, want, got)
			}
		})
	}
}

// runScenarioSummary simulates one scenario file at golden scale, audited,
// and formats the pinned outcome summary.
func runScenarioSummary(t *testing.T, file string) string {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Scaled(goldenScale).Compile()
	if err != nil {
		t.Fatal(err)
	}
	auditor := audit.NewAuditor()
	cfg.Observer = auditor
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("run failed (audit violations: %v): %v", auditor.Violations(), err)
	}
	if n := auditor.ViolationCount(); n != 0 {
		t.Fatalf("%d conservation violations: %v", n, auditor.Violations())
	}

	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s @ scale %.2f\n", sc.Name, goldenScale)
	fmt.Fprintf(&b, "policy: %s\n", res.Policy)
	fmt.Fprintf(&b, "slots: %d\n", res.Slots)
	fmt.Fprintf(&b, "brown_kwh: %.3f\n", float64(res.Energy.Brown)/1000)
	fmt.Fprintf(&b, "green_lost_kwh: %.3f\n", float64(res.Energy.GreenLost)/1000)
	fmt.Fprintf(&b, "battery_loss_kwh: %.3f\n",
		float64(res.Battery.EfficiencyLoss+res.Battery.SelfDischargeLoss)/1000)
	fmt.Fprintf(&b, "migration_kwh: %.3f\n", float64(res.Energy.MigrationOverhead)/1000)
	fmt.Fprintf(&b, "transition_kwh: %.3f\n", float64(res.Energy.TransitionOverhead)/1000)
	fmt.Fprintf(&b, "completed: %d/%d\n", res.SLA.Completed, res.SLA.Submitted)
	fmt.Fprintf(&b, "deadline_misses: %d\n", res.SLA.DeadlineMisses)
	fmt.Fprintf(&b, "unserved_reads: %d\n", res.SLA.UnservedReads)
	return b.String()
}
