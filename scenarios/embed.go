// Package scenarios embeds the shipped scenario files so library code —
// the experiment registry's arena family, benchmarks, property tests — can
// enumerate and load them without knowing where the repository lives on
// disk. The on-disk files stay the source of truth: the embedded copies
// are byte-identical by construction, and the golden tests keep reading
// the files directly.
package scenarios

import (
	"embed"
	"sort"
	"strings"
)

//go:embed *.json
var files embed.FS

// Names returns the scenario names (file basenames without .json), sorted.
func Names() []string {
	entries, err := files.ReadDir(".")
	if err != nil {
		panic("scenarios: embedded FS unreadable: " + err.Error())
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Bytes returns the raw JSON of the named scenario.
func Bytes(name string) ([]byte, error) {
	return files.ReadFile(name + ".json")
}
